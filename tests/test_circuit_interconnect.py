"""Tests for wire parasitics and Elmore delay."""

import pytest

from repro.circuit import interconnect
from repro.circuit.technology import TECH45
from repro.core.errors import ConfigurationError
from repro.variation.parameters import TABLE1

NOMINAL = TABLE1.nominal()


class TestResistance:
    def test_positive(self):
        assert interconnect.wire_resistance_per_m(NOMINAL, TECH45) > 0

    def test_narrow_line_resists_more(self):
        narrow = NOMINAL.replace(metal_width=NOMINAL.metal_width * 0.67)
        assert interconnect.wire_resistance_per_m(
            narrow, TECH45
        ) > interconnect.wire_resistance_per_m(NOMINAL, TECH45)

    def test_thin_metal_resists_more(self):
        thin = NOMINAL.replace(metal_thickness=NOMINAL.metal_thickness * 0.67)
        assert interconnect.wire_resistance_per_m(
            thin, TECH45
        ) > interconnect.wire_resistance_per_m(NOMINAL, TECH45)

    def test_reciprocal_area(self):
        half = NOMINAL.replace(metal_width=NOMINAL.metal_width / 2)
        assert interconnect.wire_resistance_per_m(half, TECH45) == pytest.approx(
            2 * interconnect.wire_resistance_per_m(NOMINAL, TECH45)
        )

    def test_length_scaling(self):
        assert interconnect.wire_resistance(
            2e-4, NOMINAL, TECH45
        ) == pytest.approx(2 * interconnect.wire_resistance(1e-4, NOMINAL, TECH45))

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            interconnect.wire_resistance(-1.0, NOMINAL, TECH45)


class TestCapacitance:
    def test_thin_dielectric_raises_ground_cap(self):
        thin = NOMINAL.replace(ild_thickness=NOMINAL.ild_thickness * 0.65)
        assert interconnect.wire_capacitance_per_m(
            thin, TECH45
        ) > interconnect.wire_capacitance_per_m(NOMINAL, TECH45)

    def test_wide_line_raises_cap_two_ways(self):
        """Wider lines add area cap AND shrink spacing (coupling up) —
        the paper's point that line-space is not independent."""
        wide = NOMINAL.replace(metal_width=NOMINAL.metal_width * 1.33)
        assert interconnect.wire_capacitance_per_m(
            wide, TECH45
        ) > interconnect.wire_capacitance_per_m(NOMINAL, TECH45)

    def test_thick_metal_raises_coupling(self):
        thick = NOMINAL.replace(metal_thickness=NOMINAL.metal_thickness * 1.33)
        assert interconnect.wire_capacitance_per_m(
            thick, TECH45
        ) > interconnect.wire_capacitance_per_m(NOMINAL, TECH45)

    def test_spacing_floor_prevents_blowup(self):
        huge = NOMINAL.replace(metal_width=TECH45.wire_pitch * 1.5)
        value = interconnect.wire_capacitance_per_m(huge, TECH45)
        assert value < 1e-8  # finite, no division blow-up

    def test_plausible_magnitude(self):
        """Tens to a few hundred pF/m at 45 nm geometries."""
        value = interconnect.wire_capacitance_per_m(NOMINAL, TECH45)
        assert 2e-11 < value < 5e-10


class TestElmore:
    def test_zero_length_is_driver_only(self):
        delay = interconnect.elmore_delay(1000.0, 0.0, NOMINAL, TECH45, 1e-15)
        assert delay == pytest.approx(0.69 * 1000.0 * 1e-15)

    def test_monotone_in_length(self):
        short = interconnect.elmore_delay(1000.0, 50e-6, NOMINAL, TECH45, 1e-15)
        long_ = interconnect.elmore_delay(1000.0, 100e-6, NOMINAL, TECH45, 1e-15)
        assert long_ > short

    def test_superlinear_in_length(self):
        """Distributed RC grows quadratically with length."""
        d1 = interconnect.elmore_delay(0.0, 100e-6, NOMINAL, TECH45, 0.0)
        d2 = interconnect.elmore_delay(0.0, 200e-6, NOMINAL, TECH45, 0.0)
        assert d2 == pytest.approx(4 * d1, rel=1e-6)

    def test_monotone_in_driver_resistance(self):
        weak = interconnect.elmore_delay(2000.0, 50e-6, NOMINAL, TECH45, 1e-15)
        strong = interconnect.elmore_delay(500.0, 50e-6, NOMINAL, TECH45, 1e-15)
        assert weak > strong

    def test_rejects_negative_inputs(self):
        with pytest.raises(ConfigurationError):
            interconnect.elmore_delay(-1.0, 1e-6, NOMINAL, TECH45)
        with pytest.raises(ConfigurationError):
            interconnect.elmore_delay(1.0, 1e-6, NOMINAL, TECH45, load_cap=-1e-15)

    def test_process_corner_slows_distributed_wire(self):
        """Narrow/thin metal slows a *wire-dominated* line: resistance
        grows reciprocally (x2.2 at the 3-sigma corner) while capacitance
        falls less than linearly thanks to the fringe term. (A
        driver-dominated net can actually speed up at this corner — the
        load shrinks — which is why the test pins the RC-product case.)"""
        bad = NOMINAL.replace(
            metal_width=NOMINAL.metal_width * 0.67,
            metal_thickness=NOMINAL.metal_thickness * 0.67,
        )
        assert interconnect.elmore_delay(
            0.0, 100e-6, bad, TECH45, 0.0
        ) > interconnect.elmore_delay(0.0, 100e-6, NOMINAL, TECH45, 0.0)
