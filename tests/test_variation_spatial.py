"""Tests for the mesh layout and correlation factors."""

import pytest

from repro.core.errors import ConfigurationError
from repro.variation.spatial import CorrelationFactors, MeshLayout, PAPER_FACTORS


class TestMeshLayout:
    def test_default_is_2x2(self):
        mesh = MeshLayout()
        assert mesh.capacity == 4

    def test_positions_row_major(self):
        mesh = MeshLayout()
        assert mesh.position(0) == (0, 0)
        assert mesh.position(1) == (0, 1)
        assert mesh.position(2) == (1, 0)
        assert mesh.position(3) == (1, 1)

    def test_relations_match_paper_geometry(self):
        mesh = MeshLayout()
        assert mesh.relation_to_origin(0) == "origin"
        assert mesh.relation_to_origin(1) == "horizontal"
        assert mesh.relation_to_origin(2) == "vertical"
        assert mesh.relation_to_origin(3) == "diagonal"

    def test_out_of_range_way(self):
        with pytest.raises(ConfigurationError):
            MeshLayout().position(4)

    def test_invalid_mesh(self):
        with pytest.raises(ConfigurationError):
            MeshLayout(rows=0, cols=2)

    def test_larger_mesh(self):
        mesh = MeshLayout(rows=2, cols=4)
        assert mesh.capacity == 8
        assert mesh.position(5) == (1, 1)


class TestCorrelationFactors:
    """Pin the paper's Section 3 correlation factors."""

    def test_paper_values(self):
        assert PAPER_FACTORS.bit == pytest.approx(0.01)
        assert PAPER_FACTORS.row == pytest.approx(0.05)
        assert PAPER_FACTORS.way_horizontal == pytest.approx(0.375)
        assert PAPER_FACTORS.way_vertical == pytest.approx(0.45)
        assert PAPER_FACTORS.way_diagonal == pytest.approx(0.7125)

    def test_way_factor_dispatch(self):
        mesh = MeshLayout()
        assert PAPER_FACTORS.way_factor(0, mesh) == 0.0
        assert PAPER_FACTORS.way_factor(1, mesh) == pytest.approx(0.375)
        assert PAPER_FACTORS.way_factor(2, mesh) == pytest.approx(0.45)
        assert PAPER_FACTORS.way_factor(3, mesh) == pytest.approx(0.7125)

    def test_diagonal_factor_is_product_like(self):
        # The paper's diagonal factor is horizontal x vertical / ... in
        # fact 0.7125 = 0.375 + 0.45 - 0.375*0.45/... just pin the ratio
        # ordering instead: diagonal is the least correlated.
        assert (
            PAPER_FACTORS.way_diagonal
            > PAPER_FACTORS.way_vertical
            > PAPER_FACTORS.way_horizontal
        )

    def test_scaled_ways(self):
        scaled = PAPER_FACTORS.scaled_ways(2.0)
        assert scaled.way_horizontal == pytest.approx(0.75)
        assert scaled.bit == PAPER_FACTORS.bit
        assert scaled.band == PAPER_FACTORS.band

    def test_with_band(self):
        changed = PAPER_FACTORS.with_band(0.0)
        assert changed.band == 0.0
        assert changed.way_vertical == PAPER_FACTORS.way_vertical

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            CorrelationFactors(bit=-0.1)

    def test_scaled_ways_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PAPER_FACTORS.scaled_ways(-1.0)
