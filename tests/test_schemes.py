"""Tests for YAPD, H-YAPD, VACA, Hybrid, binning, and adaptive schemes."""

import pytest

from repro.schemes import (
    AdaptiveHybrid,
    HYAPD,
    Hybrid,
    HybridHorizontal,
    NaiveBinning,
    VACA,
    YAPD,
)
from repro.schemes.adaptive import TableEstimator
from repro.core.errors import ConfigurationError
from tests.conftest import make_chip


class TestYAPD:
    def test_passing_chip_untouched(self, healthy_chip):
        outcome = YAPD().rescue(healthy_chip)
        assert outcome.saved
        assert outcome.disabled_way is None

    def test_one_slow_way_disabled(self, one_slow_way_chip):
        outcome = YAPD().rescue(one_slow_way_chip)
        assert outcome.saved
        assert outcome.disabled_way == 3
        assert outcome.way_cycles == (4, 4, 4, None)
        assert outcome.configuration == "3-1-0"

    def test_six_plus_way_also_disabled(self):
        case = make_chip([0.9, 0.9, 0.9, 1.8])
        outcome = YAPD().rescue(case)
        assert outcome.saved
        assert outcome.disabled_way == 3

    def test_two_slow_ways_lost(self):
        case = make_chip([0.9, 0.9, 1.2, 1.2])
        outcome = YAPD().rescue(case)
        assert not outcome.saved
        assert "only one" in outcome.note

    def test_leakage_disables_leakiest(self):
        case = make_chip([0.9] * 4, way_leakages=[0.2, 0.2, 0.2, 0.5])
        outcome = YAPD().rescue(case)
        assert outcome.saved
        assert outcome.disabled_way == 3

    def test_leakage_unfixable_by_one_way(self):
        case = make_chip([0.9] * 4, way_leakages=[0.5, 0.5, 0.5, 0.5])
        outcome = YAPD().rescue(case)
        assert not outcome.saved

    def test_leakage_and_delay_same_way(self):
        """The slow way is also the leaky one: one disable fixes both."""
        case = make_chip(
            [0.9, 0.9, 0.9, 1.2], way_leakages=[0.2, 0.2, 0.2, 0.6]
        )
        outcome = YAPD().rescue(case)
        assert outcome.saved
        assert outcome.disabled_way == 3

    def test_leakage_and_delay_different_ways(self):
        """Slow way 3, leaky way 0, both must go -> lost."""
        case = make_chip(
            [1.2, 0.9, 0.9, 0.9], way_leakages=[0.2, 0.2, 0.2, 0.9]
        )
        outcome = YAPD().rescue(case)
        assert not outcome.saved


class TestVACA:
    def test_five_cycle_ways_tolerated(self):
        case = make_chip([1.2, 1.2, 0.9, 1.1])
        outcome = VACA().rescue(case)
        assert outcome.saved
        assert outcome.way_cycles == (5, 5, 4, 5)
        assert outcome.disabled_way is None

    def test_six_cycle_way_lost(self):
        case = make_chip([0.9, 0.9, 0.9, 1.3])
        outcome = VACA().rescue(case)
        assert not outcome.saved

    def test_leakage_lost(self, leaky_chip):
        outcome = VACA().rescue(leaky_chip)
        assert not outcome.saved
        assert "leakage" in outcome.note

    def test_passing_chip(self, healthy_chip):
        assert VACA().rescue(healthy_chip).saved


class TestHYAPD:
    def _band_localised_chip(self):
        """Way 0 violates only through band 3."""
        profiles = [
            [0.9, 0.9, 0.9, 1.2],
            [0.85, 0.9, 0.9, 0.95],
            [0.85, 0.9, 0.9, 0.95],
            [0.85, 0.9, 0.9, 0.95],
        ]
        return make_chip([1.2, 0.95, 0.95, 0.95], band_profiles=profiles)

    def test_band_localised_violation_fixed(self):
        outcome = HYAPD().rescue(self._band_localised_chip())
        assert outcome.saved
        assert outcome.disabled_band == 3
        assert outcome.way_cycles == (4, 4, 4, 4)

    def test_whole_way_shift_unfixable(self):
        """Every band of way 0 violates: no single band repairs it."""
        profiles = [
            [1.2, 1.2, 1.2, 1.2],
            [0.9] * 4,
            [0.9] * 4,
            [0.9] * 4,
        ]
        case = make_chip([1.2, 0.9, 0.9, 0.9], band_profiles=profiles)
        outcome = HYAPD().rescue(case)
        assert not outcome.saved

    def test_multi_way_aligned_band_fixed(self):
        """The same band is critical in all ways: H-YAPD repairs a
        multi-way violation YAPD cannot (paper Section 4.2)."""
        profiles = [[0.9, 0.9, 0.9, 1.15] for _ in range(4)]
        case = make_chip([1.15] * 4, band_profiles=profiles)
        assert not YAPD().rescue(case).saved
        outcome = HYAPD().rescue(case)
        assert outcome.saved
        assert outcome.disabled_band == 3

    def test_leakage_band_disable(self):
        """Gating a band across ways removes ~1/4 of array leakage."""
        case = make_chip([0.9] * 4, way_leakages=[0.3, 0.3, 0.3, 0.3])
        assert case.leakage_violation
        outcome = HYAPD(peripheral_save_fraction=0.5).rescue(case)
        # each way: periph 0.03, bands 0.0675 each; disabling one band
        # saves 4*0.0675 + 0.5*0.12/4 = 0.285 -> total 0.915 <= 1.0
        assert outcome.saved
        assert outcome.disabled_band is not None

    def test_peripheral_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            HYAPD(peripheral_save_fraction=1.5)


class TestHybrid:
    def test_keeps_ways_on_when_possible(self, one_slow_way_chip):
        """Paper: a way is turned off only if necessary; 3-1-0 runs as
        VACA."""
        outcome = Hybrid().rescue(one_slow_way_chip)
        assert outcome.saved
        assert outcome.disabled_way is None
        assert outcome.way_cycles == (4, 4, 4, 5)

    def test_disables_single_six_plus_way(self):
        case = make_chip([0.9, 1.1, 0.9, 1.4])
        outcome = Hybrid().rescue(case)
        assert outcome.saved
        assert outcome.disabled_way == 3
        assert outcome.way_cycles == (4, 5, 4, None)

    def test_two_six_plus_ways_lost(self):
        case = make_chip([0.9, 0.9, 1.4, 1.4])
        assert not Hybrid().rescue(case).saved

    def test_leakage_uses_power_down(self, leaky_chip):
        outcome = Hybrid().rescue(leaky_chip)
        assert outcome.saved
        assert outcome.disabled_way == 3

    def test_four_five_cycle_ways_saved(self):
        """0-4-0 is saved by Hybrid (and VACA) but not YAPD."""
        case = make_chip([1.2, 1.2, 1.2, 1.2])
        assert Hybrid().rescue(case).saved
        assert VACA().rescue(case).saved
        assert not YAPD().rescue(case).saved

    def test_leakage_plus_slow_way(self):
        """Leaky chip with a separate 5-cycle way: Hybrid disables the
        leaky way and serves the slow one at 5 cycles; YAPD, forced to
        disable the slow way, cannot also fix the leakage."""
        case = make_chip(
            [1.2, 0.9, 0.9, 0.9], way_leakages=[0.2, 0.3, 0.3, 0.5]
        )
        hybrid = Hybrid().rescue(case)
        assert hybrid.saved
        assert hybrid.disabled_way == 3
        assert not YAPD().rescue(case).saved


class TestHybridHorizontal:
    def test_vaca_mode(self, one_slow_way_chip):
        outcome = HybridHorizontal().rescue(one_slow_way_chip)
        assert outcome.saved
        assert outcome.disabled_band is None

    def test_band_disable_for_six_plus(self):
        profiles = [
            [0.9, 0.9, 0.9, 1.4],
            [0.9] * 4,
            [0.9] * 4,
            [0.9] * 4,
        ]
        case = make_chip([1.4, 0.9, 0.9, 0.9], band_profiles=profiles)
        outcome = HybridHorizontal().rescue(case)
        assert outcome.saved
        assert outcome.disabled_band == 3


class TestNaiveBinning:
    def test_rebins_five_cycle_chip(self):
        case = make_chip([1.2, 1.1, 0.9, 1.2])
        outcome = NaiveBinning(5).rescue(case)
        assert outcome.saved
        assert outcome.way_cycles == (5, 5, 5, 5)

    def test_six_cycle_chip_needs_six_bin(self):
        case = make_chip([0.9, 0.9, 0.9, 1.4])
        assert not NaiveBinning(5).rescue(case).saved
        outcome = NaiveBinning(6).rescue(case)
        assert outcome.saved
        assert outcome.way_cycles == (6, 6, 6, 6)

    def test_leakage_not_fixable(self, leaky_chip):
        assert not NaiveBinning(6).rescue(leaky_chip).saved

    def test_rejects_sub_base_target(self):
        with pytest.raises(ConfigurationError):
            NaiveBinning(3)


class TestAdaptiveHybrid:
    def test_prefers_cheaper_option(self, one_slow_way_chip):
        """With VACA predicted costlier than disabling, it disables."""
        estimator = TableEstimator(
            {
                (4, 4, 4, 5): 0.03,
                (4, 4, 4, None): 0.01,
            }
        )
        outcome = AdaptiveHybrid(estimator).rescue(one_slow_way_chip)
        assert outcome.saved
        assert outcome.disabled_way == 3

    def test_prefers_keeping_way_when_cheap(self, one_slow_way_chip):
        estimator = TableEstimator(
            {
                (4, 4, 4, 5): 0.005,
                (4, 4, 4, None): 0.02,
            }
        )
        outcome = AdaptiveHybrid(estimator).rescue(one_slow_way_chip)
        assert outcome.saved
        assert outcome.disabled_way is None

    def test_canonicalisation_ignores_way_order(self):
        estimator = TableEstimator({(4, 4, 4, 5): 0.01})
        assert estimator((5, 4, 4, 4)) == pytest.approx(0.01)
        assert estimator((4, 5, 4, 4)) == pytest.approx(0.01)

    def test_unfixable_chip_lost(self):
        estimator = TableEstimator({}, default=0.0)
        case = make_chip([0.9, 0.9, 1.4, 1.4])
        assert not AdaptiveHybrid(estimator).rescue(case).saved


class TestOutcomeInvariants:
    def test_saved_outcomes_have_cycles(self, one_slow_way_chip):
        for scheme in (YAPD(), VACA(), Hybrid(), NaiveBinning(5)):
            outcome = scheme.rescue(one_slow_way_chip)
            if outcome.saved:
                assert outcome.way_cycles is not None
                assert outcome.enabled_ways

    def test_lost_outcomes_carry_note(self):
        case = make_chip([1.4, 1.4, 1.4, 1.4])
        for scheme in (YAPD(), VACA(), Hybrid()):
            outcome = scheme.rescue(case)
            assert not outcome.saved
            assert outcome.note

    def test_max_cycles(self, one_slow_way_chip):
        outcome = VACA().rescue(one_slow_way_chip)
        assert outcome.max_cycles == 5
