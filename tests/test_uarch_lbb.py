"""Tests for the load-bypass buffer occupancy tracker."""

import pytest

from repro.core.errors import ConfigurationError
from repro.uarch.lbb import LoadBypassBuffers


class TestHold:
    def test_single_hold(self):
        lbb = LoadBypassBuffers(capacity=2, slack=1)
        assert lbb.try_hold(10, 1)
        assert lbb.total_stalls == 1

    def test_duration_beyond_slack_rejected(self):
        lbb = LoadBypassBuffers(capacity=2, slack=1)
        assert not lbb.try_hold(10, 2)
        assert lbb.total_stalls == 0

    def test_zero_slack_rejects_everything(self):
        lbb = LoadBypassBuffers(capacity=2, slack=0)
        assert not lbb.try_hold(10, 1)

    def test_capacity_enforced(self):
        lbb = LoadBypassBuffers(capacity=2, slack=1)
        assert lbb.try_hold(10, 1)
        assert lbb.try_hold(10, 1)
        assert not lbb.try_hold(10, 1)
        assert lbb.overflows == 1

    def test_capacity_is_per_cycle(self):
        lbb = LoadBypassBuffers(capacity=1, slack=1)
        assert lbb.try_hold(10, 1)
        assert lbb.try_hold(11, 1)  # different cycle, fresh entry

    def test_multi_cycle_hold_spans(self):
        lbb = LoadBypassBuffers(capacity=1, slack=2)
        assert lbb.try_hold(10, 2)  # occupies cycles 10 and 11
        assert not lbb.try_hold(11, 1)

    def test_peak_tracking(self):
        lbb = LoadBypassBuffers(capacity=4, slack=1)
        for _ in range(3):
            lbb.try_hold(5, 1)
        assert lbb.peak == 3

    def test_release_before(self):
        lbb = LoadBypassBuffers(capacity=1, slack=1)
        lbb.try_hold(10, 1)
        lbb.release_before(100)
        assert lbb.try_hold(10, 1)  # bookkeeping dropped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadBypassBuffers(capacity=0)
        with pytest.raises(ConfigurationError):
            LoadBypassBuffers(capacity=1, slack=-1)
