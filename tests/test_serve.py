"""End-to-end tests: a live server over a real socket.

A :class:`ServerThread` hosts the service on an ephemeral port with its
own engine (scratch store), and stdlib clients talk to it exactly the
way CI and external callers do. The tier-1 claims of the serve layer are
asserted here:

* N concurrent identical cold queries cost exactly one pool dispatch
  (``stage.population`` histogram count), with the surplus accounted for
  by coalesce-joins or warm hits;
* a repeat query after completion costs zero dispatches and returns a
  payload **bit-identical** to encoding the direct engine result;
* overload yields clean 429/503 responses, never a crashed server;
* progress streams deliver accepted → progress → result;
* SIGTERM on a live ``repro serve`` process drains in-flight work
  before exiting 0.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.engine.store import canonical_json
from repro.engine.core import Engine, EngineConfig
from repro.experiments.common import ExperimentSettings
from repro.obs.promtext import parse_exposition
from repro.obs.trace import configure_tracing, disable_tracing
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A live server plus its engine; one per module, scratch store."""
    engine = Engine(
        EngineConfig(
            workers=1, cache_dir=tmp_path_factory.mktemp("serve-store")
        )
    )
    thread = ServerThread(engine, ServeConfig(port=0))
    host, port = thread.start()
    yield engine, host, port
    thread.stop()
    engine.shutdown()


def _counters(engine):
    return engine.metrics.snapshot()["counters"]


def _dispatches(engine) -> int:
    histograms = engine.metrics.snapshot()["histograms"]
    stage = histograms.get("stage.population")
    return int(stage["count"]) if stage else 0


# ----------------------------------------------------------------------
# basic surface
# ----------------------------------------------------------------------
def test_healthz_reports_engine_and_admission(served):
    engine, host, port = served
    with ServeClient(host, port) as client:
        health = client.healthz()
    assert health["status"] == "ok"
    assert health["engine"]["workers"] == 1
    assert health["admission"]["max_active"] == 8
    assert "store" in health


def test_metrics_serves_registry_snapshot(served):
    engine, host, port = served
    with ServeClient(host, port) as client:
        client.population(seed=11, chips=20)
        metrics = client.metrics()
    assert "serve.requests" in metrics["engine"]["counters"]
    assert metrics["server"]["draining"] is False
    # The rolling-window view rides along in the JSON representation.
    rollup = metrics["rollup"]
    assert rollup["window_seconds"] > 0
    assert rollup["total"]["count"] >= 1
    assert "/v1/population" in rollup["endpoints"]


def test_unknown_endpoint_404_wrong_method_405(served):
    engine, host, port = served
    with ServeClient(host, port) as client:
        with pytest.raises(ServeError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404
        with pytest.raises(ServeError) as info:
            client._request("GET", "/v1/population")
        assert info.value.status == 405

        with pytest.raises(ServeError) as info:
            client._request("POST", "/v1/population", {"policy": "bogus"})
        assert info.value.status == 400


# ----------------------------------------------------------------------
# coalescing: N concurrent identical queries, one dispatch
# ----------------------------------------------------------------------
def test_concurrent_identical_queries_one_dispatch(served):
    engine, host, port = served
    body = {"seed": 21, "chips": 2000, "detail": "summary"}
    n = 6
    before_dispatches = _dispatches(engine)
    before = _counters(engine)

    results, errors = [None] * n, []
    barrier = threading.Barrier(n)

    def query(i):
        try:
            barrier.wait()
            with ServeClient(host, port, client_id=f"client-{i}") as client:
                results[i] = client._request("POST", "/v1/population", body)
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(exc)

    threads = [threading.Thread(target=query, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)

    assert not errors
    assert all(r == results[0] for r in results)
    # The heart of the PR: six requests, one pool dispatch.
    assert _dispatches(engine) - before_dispatches == 1
    after = _counters(engine)

    def delta(name):
        return after.get(name, 0) - before.get(name, 0)

    assert delta("serve.coalesce.leader") == 1
    # Everyone else either joined the flight or arrived after it settled
    # (a warm store hit) — both cost zero dispatches.
    assert delta("serve.coalesce.joined") + delta("serve.request.warm") == n - 1


def test_warm_repeat_zero_dispatch_bit_identical(served):
    engine, host, port = served
    body = {"seed": 33, "chips": 40, "detail": "full"}

    def raw_query():
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request(
                "POST", "/v1/population", body=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = response.read()
            assert response.status == 200
            return payload
        finally:
            conn.close()

    first = raw_query()
    before = _dispatches(engine)
    repeat = raw_query()
    # Byte-for-byte identical, and nothing recomputed.
    assert repeat == first
    assert _dispatches(engine) - before == 0

    # And identical to encoding the direct engine result ourselves.
    from repro.engine.codec import encode_population

    result = engine.population(ExperimentSettings(seed=33, chips=40))
    expected = canonical_json(
        {"kind": "population", "detail": "full",
         "result": encode_population(result)}
    ).encode("utf-8")
    assert first == expected


def test_simulations_batch_into_shared_dispatch(served):
    engine, host, port = served
    benchmarks = ["gzip", "mcf", "swim"]
    before = _counters(engine)

    results, errors = {}, []
    barrier = threading.Barrier(len(benchmarks))

    def query(benchmark):
        try:
            barrier.wait()
            with ServeClient(host, port) as client:
                results[benchmark] = client.simulate(
                    benchmark, seed=44, trace_length=3000, warmup=300
                )
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=query, args=(b,)) for b in benchmarks
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)

    assert not errors
    assert set(results) == set(benchmarks)
    assert all(r["kind"] == "simulation" for r in results.values())
    after = _counters(engine)
    dispatched = after.get("serve.batch.dispatches", 0) - before.get(
        "serve.batch.dispatches", 0
    )
    jobs = after.get("serve.batch.jobs", 0) - before.get(
        "serve.batch.jobs", 0
    )
    assert jobs == len(benchmarks)
    # All three landed within the batch window → fewer dispatches than
    # jobs; with full overlap exactly one.
    assert dispatched <= 2


# ----------------------------------------------------------------------
# streaming
# ----------------------------------------------------------------------
def test_population_stream_events(served):
    engine, host, port = served
    with ServeClient(host, port) as client:
        events = list(client.population_stream(seed=55, chips=500))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "accepted"
    assert kinds[-1] == "result"
    assert events[0]["key"]
    result = events[-1]["payload"]
    assert result["kind"] == "population"
    # A warm repeat still streams, with the same payload.
    with ServeClient(host, port) as client:
        warm = list(client.population_stream(seed=55, chips=500))
    assert warm[-1]["payload"] == result


# ----------------------------------------------------------------------
# admission control under overload
# ----------------------------------------------------------------------
def test_overload_yields_429_and_503(tmp_path):
    engine = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "store"))
    thread = ServerThread(
        engine,
        ServeConfig(port=0, max_active=1, max_queued=2, max_per_client=1),
    )
    host, port = thread.start()
    try:
        statuses = {}
        occupier_done = threading.Event()

        def occupy():
            # A slow cold query that pins the single compute slot.
            with ServeClient(host, port, client_id="occupier") as client:
                client.population(seed=71, chips=4000)
            occupier_done.set()

        occupier = threading.Thread(target=occupy)
        occupier.start()
        # Wait until the slot is actually held.
        deadline = time.time() + 10
        with ServeClient(host, port, client_id="probe") as probe:
            while time.time() < deadline:
                if probe.healthz()["admission"]["active"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("occupier never acquired the compute slot")

        def cold_query(client_id, seed, bucket):
            try:
                with ServeClient(host, port, client_id=client_id) as client:
                    client.population(seed=seed, chips=1500)
                statuses[bucket] = 200
            except ServeError as exc:
                statuses[bucket] = exc.status

        # Client "greedy" queues one (fills its per-client bound)...
        q1 = threading.Thread(
            target=cold_query, args=("greedy", 72, "queued")
        )
        q1.start()
        deadline = time.time() + 10
        with ServeClient(host, port, client_id="probe") as probe:
            while time.time() < deadline:
                if probe.healthz()["admission"]["queued"] >= 1:
                    break
                time.sleep(0.01)

        # ...its second is told to back off.
        cold_query("greedy", 73, "greedy-second")
        assert statuses["greedy-second"] == 429

        # Fill the global queue, then the next client sees 503.
        q2 = threading.Thread(
            target=cold_query, args=("other", 74, "queued2")
        )
        q2.start()
        deadline = time.time() + 10
        with ServeClient(host, port, client_id="probe") as probe:
            while time.time() < deadline:
                if probe.healthz()["admission"]["queued"] >= 2:
                    break
                time.sleep(0.01)
        cold_query("third", 75, "overflow")
        assert statuses["overflow"] == 503

        occupier.join(timeout=60)
        q1.join(timeout=60)
        q2.join(timeout=60)
        assert occupier_done.is_set()
        # The queued requests eventually ran to completion.
        assert statuses["queued"] == 200
        assert statuses["queued2"] == 200
        # And the server is still healthy afterwards.
        with ServeClient(host, port) as client:
            assert client.healthz()["status"] == "ok"
    finally:
        thread.stop()
        engine.shutdown()


# ----------------------------------------------------------------------
# SIGTERM drain on the real CLI process
# ----------------------------------------------------------------------
def test_sigterm_drains_inflight_work(tmp_path):
    env = dict(
        os.environ,
        PYTHONPATH=SRC,
        REPRO_CACHE_DIR=str(tmp_path / "store"),
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listen announcement in {line!r}"
        host, port = match.group(1), int(match.group(2))

        outcome = {}

        def slow_query():
            try:
                with ServeClient(host, port, timeout=60) as client:
                    outcome["result"] = client.population(seed=91, chips=4000)
            except Exception as exc:  # noqa: BLE001
                outcome["error"] = exc

        worker = threading.Thread(target=slow_query)
        worker.start()
        # Wait for the job to be admitted, then pull the plug.
        deadline = time.time() + 15
        admitted = False
        while time.time() < deadline and not admitted:
            try:
                with ServeClient(host, port, timeout=5) as probe:
                    admitted = probe.healthz()["admission"]["active"] >= 1
            except Exception:  # noqa: BLE001 - server still starting
                pass
            time.sleep(0.01)
        assert admitted, "in-flight job never showed up in /healthz"
        proc.send_signal(signal.SIGTERM)

        worker.join(timeout=60)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "drained" in out
        # The in-flight query finished despite the shutdown.
        assert "result" in outcome, outcome.get("error")
        assert outcome["result"]["kind"] == "population"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


# ----------------------------------------------------------------------
# live observability surface
# ----------------------------------------------------------------------
def test_healthz_exposes_live_detail(served):
    engine, host, port = served
    with ServeClient(host, port) as client:
        client.population(seed=12, chips=20)
        health = client.healthz()
    assert health["uptime_seconds"] >= 0
    assert "entries" in health["store"] or health["store"]
    assert "compiled_traces" in health
    requests = health["requests"]
    assert requests["total"] >= requests["warm"] + requests["cold"]
    assert requests["windowed"] >= 1
    assert health["engine"]["inflight"] == 0


def test_request_id_propagates_to_spans_and_debug_ring(served, tmp_path):
    engine, host, port = served
    trace_file = tmp_path / "serve-trace.jsonl"
    configure_tracing(trace_file)
    try:
        with ServeClient(host, port) as client:
            client.population(seed=13, chips=20)
            request_id = client.last_request_id
            ring = client.debug_traces()
    finally:
        disable_tracing()

    assert request_id and len(request_id) == 16

    # The bounded in-memory ring retains the request with its id.
    assert ring["capacity"] >= 1
    ring_ids = [span["request_id"] for span in ring["spans"]]
    assert request_id in ring_ids
    matching = [
        s for s in ring["spans"] if s["request_id"] == request_id
    ][0]
    assert matching["name"] == "serve.request"
    assert matching["attrs"]["path"] == "/v1/population"
    assert matching["attrs"]["status"] == 200

    # And the real tracer recorded a serve.request span carrying the
    # same id, so JSONL traces correlate with response headers.
    spans = [
        json.loads(line)
        for line in trace_file.read_text(encoding="utf-8").splitlines()
    ]
    serve_spans = [s for s in spans if s["name"] == "serve.request"]
    assert any(
        s["attrs"].get("request_id") == request_id for s in serve_spans
    )


def test_dashboard_served_self_contained(served):
    engine, host, port = served
    with ServeClient(host, port) as client:
        client.population(seed=14, chips=20)
        page = client.dashboard()
    assert page.lstrip().startswith("<!DOCTYPE html>")
    assert "http://" not in page and "https://" not in page
    assert "src=" not in page and "<link" not in page
    for anchor in ("spark-rate", "lat-p95", "q-active", "ep-rows"):
        assert f'id="{anchor}"' in page


def test_request_log_written_as_jsonl(tmp_path):
    engine = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "store"))
    log_path = tmp_path / "requests.jsonl"
    thread = ServerThread(
        engine, ServeConfig(port=0, request_log=str(log_path))
    )
    host, port = thread.start()
    try:
        with ServeClient(host, port) as client:
            client.population(seed=15, chips=20)
            client.healthz()
            request_id = client.last_request_id
    finally:
        thread.stop()
        engine.shutdown()
    entries = [
        json.loads(line)
        for line in log_path.read_text(encoding="utf-8").splitlines()
    ]
    assert len(entries) >= 2
    by_id = {entry["request_id"]: entry for entry in entries}
    assert request_id in by_id
    health_entry = by_id[request_id]
    assert health_entry["path"] == "/healthz"
    assert health_entry["status"] == 200
    assert health_entry["seconds"] >= 0


def test_sampler_thread_stops_with_server(tmp_path):
    # Other servers (the module fixture) may be live with their own
    # samplers; only threads born with THIS server must die with it.
    before = {
        t.ident for t in threading.enumerate()
        if t.name.startswith("repro-resource-sampler")
    }
    engine = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "store"))
    thread = ServerThread(
        engine, ServeConfig(port=0, sampler_interval=0.05)
    )
    host, port = thread.start()
    try:
        deadline = time.time() + 10
        with ServeClient(host, port) as client:
            while time.time() < deadline:
                gauges = client.metrics()["engine"]["gauges"]
                if gauges.get("proc.rss_bytes", 0) > 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("resource sampler never published gauges")
    finally:
        thread.stop()
        engine.shutdown()
    # The background /proc sampler must not outlive the server.
    lingering = [
        t for t in threading.enumerate()
        if t.name.startswith("repro-resource-sampler")
        and t.ident not in before
    ]
    assert lingering == []


def test_burst_exposes_consistent_prometheus_metrics(tmp_path):
    """The acceptance scenario: mixed warm/cold burst with one overloaded
    client, then /metrics (text) and /dashboard tell a consistent story."""
    engine = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "store"))
    thread = ServerThread(
        engine,
        ServeConfig(port=0, max_active=1, max_queued=2, max_per_client=1),
    )
    host, port = thread.start()
    try:
        statuses = []

        # Cold then warm: same query twice, then a distinct cold query.
        with ServeClient(host, port, client_id="mixed") as client:
            client.population(seed=81, chips=30)
            client.population(seed=81, chips=30)  # warm repeat
            client.population(seed=82, chips=30)  # second cold

        # One overloaded client: a slow cold query pins the slot, its
        # second and third requests hit the per-client bound.
        def occupy():
            with ServeClient(host, port, client_id="greedy") as client:
                client.population(seed=83, chips=4000)

        occupier = threading.Thread(target=occupy)
        occupier.start()
        deadline = time.time() + 10
        with ServeClient(host, port, client_id="probe") as probe:
            while time.time() < deadline:
                if probe.healthz()["admission"]["active"] >= 1:
                    break
                time.sleep(0.01)

        def crowd(bucket):
            try:
                with ServeClient(host, port, client_id="greedy") as client:
                    client.population(seed=84 + bucket, chips=1500)
                statuses.append(200)
            except ServeError as exc:
                statuses.append(exc.status)

        crowders = [
            threading.Thread(target=crowd, args=(i,)) for i in range(2)
        ]
        for t in crowders:
            t.start()
        for t in crowders:
            t.join(timeout=60)
        occupier.join(timeout=60)
        assert 429 in statuses  # the overloaded client was pushed back

        with ServeClient(host, port) as client:
            text = client.metrics_text()
            page = client.dashboard()

        families = parse_exposition(text)

        # Per-endpoint latency quantiles for the scripted endpoint.
        latency = families["repro_serve_latency_seconds"]
        assert latency["type"] == "summary"
        quantiles = {
            labels["quantile"]
            for name, labels, _ in latency["samples"]
            if labels.get("endpoint") == "/v1/population"
            and "quantile" in labels
        }
        assert quantiles == {"0.5", "0.95", "0.99"}

        # Queue-depth and in-flight gauges exist and read idle now.
        for family in ("repro_serve_active", "repro_serve_queued",
                       "repro_engine_inflight"):
            assert families[family]["type"] == "gauge"
            assert families[family]["samples"][0][2] == 0.0

        # Window counts consistent with the scripted traffic: every
        # /v1/population request of the burst (successes + pushbacks)
        # landed in the rolling window.
        window = {
            labels["endpoint"]: value
            for _, labels, value in
            families["repro_serve_window_requests"]["samples"]
        }
        assert window["/v1/population"] == 4 + len(statuses)
        responses = {
            (labels["endpoint"], labels["class"]): value
            for _, labels, value in
            families["repro_serve_window_responses"]["samples"]
        }
        assert responses[("/v1/population", "4xx")] == statuses.count(429)

        # Dispositions: the warm repeat shows up as a warm hit.
        dispositions = {
            (labels["endpoint"], labels["kind"]): value
            for _, labels, value in
            families["repro_serve_window_disposition"]["samples"]
        }
        assert dispositions[("/v1/population", "warm")] >= 1
        assert dispositions[("/v1/population", "cold")] >= 2

        # Lifetime counters agree with the warm/cold split.
        assert families["repro_serve_request_warm_total"]["samples"][0][2] >= 1

        # And the dashboard renders the same data self-contained.
        assert page.lstrip().startswith("<!DOCTYPE html>")
        assert "http://" not in page and "https://" not in page
        assert "/v1/population" in page
    finally:
        thread.stop()
        engine.shutdown()
