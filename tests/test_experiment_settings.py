"""Tests for experiment settings, env scaling, and memoisation."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    benchmark_names,
    clear_caches,
    population,
    simulate_config,
)


class TestEnvironmentScaling:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHIPS", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        settings = ExperimentSettings()
        assert settings.chips == 2000
        assert settings.seed == 2006

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHIPS", "123")
        monkeypatch.setenv("REPRO_SEED", "9")
        monkeypatch.setenv("REPRO_TRACE", "777")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gzip,mcf")
        settings = ExperimentSettings()
        assert settings.chips == 123
        assert settings.seed == 9
        assert settings.trace_length == 777
        assert settings.benchmarks == ("gzip", "mcf")

    def test_benchmark_names_default_is_full_suite(self):
        settings = ExperimentSettings(benchmarks=None)
        assert len(benchmark_names(settings)) == 24

    def test_benchmark_names_subset(self):
        settings = ExperimentSettings(benchmarks=("mcf", "gzip"))
        assert benchmark_names(settings) == ["mcf", "gzip"]

    def test_unknown_benchmark_rejected_eagerly(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentSettings(benchmarks=("quake3",))

    def test_unknown_benchmark_env_rejected_eagerly(self, monkeypatch):
        from repro.core.errors import ConfigurationError

        monkeypatch.setenv("REPRO_BENCHMARKS", "gzip,quake3")
        with pytest.raises(ConfigurationError):
            ExperimentSettings()

    def test_bad_env_int_names_the_variable(self, monkeypatch):
        from repro.core.errors import ConfigurationError

        monkeypatch.setenv("REPRO_CHIPS", "not-a-number")
        with pytest.raises(ConfigurationError, match="REPRO_CHIPS"):
            ExperimentSettings()


class TestMemoisation:
    def test_population_cached_per_settings(self):
        clear_caches()
        settings = ExperimentSettings(chips=120)
        a = population(settings)
        b = population(settings)
        assert a is b

    def test_population_distinct_per_seed(self):
        clear_caches()
        a = population(ExperimentSettings(chips=120, seed=1))
        b = population(ExperimentSettings(chips=120, seed=2))
        assert a is not b

    def test_simulation_cached(self):
        clear_caches()
        settings = ExperimentSettings(
            trace_length=1500, warmup=500, benchmarks=("gzip",)
        )
        a = simulate_config(settings, "gzip")
        b = simulate_config(settings, "gzip")
        assert a is b

    def test_simulation_distinct_per_config(self):
        settings = ExperimentSettings(
            trace_length=1500, warmup=500, benchmarks=("gzip",)
        )
        base = simulate_config(settings, "gzip")
        slow = simulate_config(settings, "gzip", way_cycles=(4, 4, 4, 5))
        assert base is not slow
        clear_caches()
