"""Tests for the experiment harness (small populations / short traces)."""

import pytest

from repro.experiments import (
    ExperimentSettings,
    available_experiments,
    run_experiment,
)
from repro.experiments.common import clear_caches, render_table
from repro.experiments.table6 import CONFIG_ORDER, config_way_cycles
from repro.yieldmodel import LossReason

#: Fast settings: small chip population, tiny traces, 3 benchmarks.
FAST = ExperimentSettings(
    seed=2006,
    chips=300,
    trace_length=4000,
    warmup=3000,
    benchmarks=("gzip", "mcf", "crafty"),
)


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestInfrastructure:
    def test_registry_covers_every_paper_artefact(self):
        names = available_experiments()
        for required in (
            "fig1",
            "fig8",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig9",
            "fig10",
            "sec42",
            "sec45",
        ):
            assert required in names

    def test_unknown_experiment_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_experiment("table99", FAST)

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all rows same width

    def test_settings_validation(self):
        with pytest.raises(Exception):
            ExperimentSettings(chips=0)


class TestYieldExperiments:
    def test_fig1_is_self_consistent(self):
        result = run_experiment("fig1", FAST)
        for row in result.rows:
            assert row[-1] == pytest.approx(100.0)

    def test_fig8_has_all_chips(self):
        result = run_experiment("fig8", FAST)
        assert len(result.data["normalized_leakage"]) == FAST.chips
        assert result.data["correlation"] < -0.3

    def test_table2_structure(self):
        result = run_experiment("table2", FAST)
        assert result.headers[2:] == ["YAPD", "VACA", "Hybrid"]
        total_row = result.rows[-1]
        assert total_row[0] == "total"
        breakdown = result.data["breakdown"]
        assert total_row[1] == breakdown.base_total

    def test_table2_scheme_orderings(self):
        breakdown = run_experiment("table2", FAST).data["breakdown"]
        assert breakdown.scheme_total("Hybrid") <= breakdown.scheme_total("YAPD")
        assert breakdown.scheme_total("Hybrid") <= breakdown.scheme_total("VACA")
        assert breakdown.scheme_losses["YAPD"].get(LossReason.DELAY_1, 0) == 0

    def test_table3_base_exceeds_table2(self):
        """The slower H-YAPD organisation fails more chips."""
        t2 = run_experiment("table2", FAST).data["breakdown"]
        t3 = run_experiment("table3", FAST).data["breakdown"]
        assert t3.base_total >= t2.base_total

    def test_table4_strict_worse_than_relaxed(self):
        result = run_experiment("table4", FAST)
        relaxed = result.data["breakdowns"]["relaxed"]
        strict = result.data["breakdowns"]["strict"]
        assert strict.base_total > relaxed.base_total

    def test_table5_matches_table4_shape(self):
        result = run_experiment("table5", FAST)
        assert [row[0] for row in result.rows] == ["relaxed", "strict"]

    def test_sec42_overhead(self):
        result = run_experiment("sec42", FAST)
        assert result.data["nominal_overhead"] == pytest.approx(0.025)
        assert result.data["h_losses"] >= result.data["base_losses"]


class TestPerformanceExperiments:
    def test_config_way_cycles_table(self):
        assert config_way_cycles("3-1-0", "YAPD") == (4, 4, 4, None)
        assert config_way_cycles("3-1-0", "VACA") == (4, 4, 4, 5)
        assert config_way_cycles("2-2-0", "YAPD") is None
        assert config_way_cycles("3-0-1", "VACA") is None
        assert config_way_cycles("3-0-1", "Hybrid") == (4, 4, 4, None)
        assert config_way_cycles("2-1-1", "Hybrid") == (4, 4, 5, None)
        assert config_way_cycles("0-3-1", "Hybrid") == (5, 5, 5, None)
        assert config_way_cycles("4-0-0", "VACA") is None
        assert config_way_cycles("4-0-0", "Hybrid") == (4, 4, 4, None)

    def test_table6_structure_and_weighting(self):
        result = run_experiment("table6", FAST)
        assert [row[0] for row in result.rows[:-1]] == list(CONFIG_ORDER)
        weighted = result.data["weighted"]
        degs = result.data["degradations"]
        # Hybrid equals VACA on 3-1-0 (keeps the way powered)
        assert degs["3-1-0"]["Hybrid"] == degs["3-1-0"]["VACA"]
        # YAPD has one number for all its configurations
        assert degs["3-1-0"]["YAPD"] == degs["4-0-0"]["YAPD"]
        assert set(weighted) == {"YAPD", "VACA", "Hybrid"}

    def test_table6_vaca_monotone_in_slow_ways(self):
        degs = run_experiment("table6", FAST).data["degradations"]
        assert (
            degs["3-1-0"]["VACA"]
            <= degs["2-2-0"]["VACA"]
            <= degs["1-3-0"]["VACA"]
            <= degs["0-4-0"]["VACA"]
        )

    def test_fig9_rows_cover_benchmarks(self):
        result = run_experiment("fig9", FAST)
        names = [row[0] for row in result.rows[:-1]]
        assert names == ["gzip", "mcf", "crafty"]
        assert result.rows[-1][0] == "average"

    def test_fig10_vaca_only(self):
        result = run_experiment("fig10", FAST)
        assert result.headers == ["benchmark", "base CPI", "VACA"]

    def test_sec45_binning_ordering(self):
        series = run_experiment("sec45", FAST).data["series"]
        for name in ("gzip", "crafty"):
            assert series["binning@6"][name] > series["binning@5"][name] > 0

    def test_ablation_lbb_tradeoff(self):
        result = run_experiment("ablation_lbb", FAST)
        data = result.data
        # deeper buffers never lose yield, never get cheaper
        assert data[0]["reduction"] <= data[1]["reduction"] <= data[2]["reduction"]
        assert data[0]["cost"] <= data[1]["cost"] <= data[2]["cost"]


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_run_fig1(self, capsys):
        from repro.cli import main

        assert main(["run", "fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_run_writes_output(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "table2",
                "--chips",
                "200",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "table2.txt").exists()

    def test_run_out_file(self, tmp_path, capsys):
        """`repro run --out FILE` writes one file (parity with `all --out DIR`)."""
        from repro.cli import main

        target = tmp_path / "nested" / "figure1.txt"
        assert main(["run", "fig1", "--out", str(target)]) == 0
        assert "Figure 1" in target.read_text(encoding="utf-8")

    def test_all_out_dir(self, tmp_path, capsys, monkeypatch):
        """`repro all --out DIR` writes one artefact per experiment."""
        from repro.cli import main
        from repro.experiments import available_experiments

        monkeypatch.setenv("REPRO_CHIPS", "150")
        monkeypatch.setenv("REPRO_TRACE", "800")
        monkeypatch.setenv("REPRO_WARMUP", "200")
        monkeypatch.setenv("REPRO_BENCHMARKS", "gzip")
        assert main(["all", "--out", str(tmp_path)]) == 0
        for name in available_experiments():
            assert (tmp_path / f"{name}.txt").exists()

    def test_run_workers_and_stats_flags(self, capsys):
        from repro.cli import main
        from repro.engine import reset_engine

        try:
            assert main(["run", "fig1", "--workers", "2", "--stats"]) == 0
            out = capsys.readouterr().out
            assert "engine statistics" in out
            assert "workers            2" in out
        finally:
            reset_engine()  # --workers reconfigured the global engine

    def test_cache_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.engine import reset_engine

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_engine()
        try:
            assert main(["run", "table2", "--chips", "120"]) == 0
            capsys.readouterr()
            assert main(["cache", "info"]) == 0
            out = capsys.readouterr().out
            assert "entries" in out and "population" in out
            assert main(["cache", "clear"]) == 0
            assert "removed" in capsys.readouterr().out
            assert main(["cache", "info"]) == 0
            assert "entries          0" in capsys.readouterr().out
        finally:
            reset_engine()
