"""Regression tests for the CLI output writers.

``repro run --out deep/new/dir/result.txt`` (and the directory form)
must create missing parent directories instead of dying with
``FileNotFoundError``.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.cli import _write_into_dir, _write_into_file, build_parser


def _result(experiment: str = "table2") -> SimpleNamespace:
    return SimpleNamespace(experiment=experiment, text="hello world")


class TestOutputWriters:
    def test_write_into_file_creates_missing_parents(self, tmp_path):
        out = tmp_path / "a" / "b" / "c" / "result.txt"
        _write_into_file(_result(), out)
        assert out.read_text(encoding="utf-8") == "hello world\n"

    def test_write_into_dir_creates_missing_parents(self, tmp_path):
        out = tmp_path / "deep" / "results"
        _write_into_dir(_result("table6"), out)
        assert (out / "table6.txt").read_text(
            encoding="utf-8"
        ) == "hello world\n"

    def test_write_into_file_existing_dir_still_works(self, tmp_path):
        out = tmp_path / "result.txt"
        _write_into_file(_result(), out)
        assert out.is_file()


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.workers is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--max-active", "4"]
        )
        assert args.port == 0
        assert args.workers == 2
        assert args.max_active == 4
