"""Tests for the population yield study (small, fast populations)."""

import pytest

from repro.schemes import HYAPD, Hybrid, HybridHorizontal, VACA, YAPD
from repro.yieldmodel import LossReason, YieldStudy
from repro.yieldmodel.constraints import RELAXED_POLICY, STRICT_POLICY

CHIPS = 400


@pytest.fixture(scope="module")
def pop():
    return YieldStudy(seed=2006, count=CHIPS).run()


class TestPopulationBasics:
    def test_population_size(self, pop):
        assert pop.population == CHIPS
        assert len(pop.h_cases) == CHIPS

    def test_deterministic(self):
        a = YieldStudy(seed=77, count=60).run()
        b = YieldStudy(seed=77, count=60).run()
        assert [c.circuit for c in a.cases] == [c.circuit for c in b.cases]

    def test_seed_changes_chips(self):
        a = YieldStudy(seed=1, count=30).run()
        b = YieldStudy(seed=2, count=30).run()
        assert [c.circuit for c in a.cases] != [c.circuit for c in b.cases]

    def test_same_limits_for_both_architectures(self, pop):
        assert pop.cases[0].constraints is pop.constraints
        assert pop.h_cases[0].constraints is pop.constraints

    def test_h_architecture_is_uniformly_slower(self, pop):
        for case, h_case in zip(pop.cases[:100], pop.h_cases[:100]):
            assert h_case.circuit.access_delay == pytest.approx(
                case.circuit.access_delay * 1.025
            )

    def test_h_architecture_leaks_identically(self, pop):
        for case, h_case in zip(pop.cases[:100], pop.h_cases[:100]):
            assert h_case.circuit.total_leakage == pytest.approx(
                case.circuit.total_leakage
            )

    def test_scatter_normalisation(self, pop):
        norm_leak, delays = pop.scatter()
        assert len(norm_leak) == CHIPS
        assert sum(norm_leak) / CHIPS == pytest.approx(1.0)


class TestBreakdownAccounting:
    def test_base_counts_cover_all_failures(self, pop):
        bd = pop.breakdown([YAPD()])
        failing = sum(1 for case in pop.cases if not case.passes)
        assert bd.base_total == failing

    def test_scheme_losses_never_exceed_base(self, pop):
        bd = pop.breakdown([YAPD(), VACA(), Hybrid()])
        for reason, base, losses in bd.rows():
            for value in losses.values():
                assert 0 <= value <= base

    def test_yield_accounting(self, pop):
        bd = pop.breakdown([Hybrid()])
        assert bd.yield_with() == pytest.approx(
            1 - bd.base_total / CHIPS
        )
        assert bd.yield_with("Hybrid") >= bd.yield_with()

    def test_vaca_never_saves_leakage(self, pop):
        bd = pop.breakdown([VACA()])
        leak_base = bd.base_counts.get(LossReason.LEAKAGE, 0)
        assert bd.scheme_losses["VACA"].get(LossReason.LEAKAGE, 0) == leak_base

    def test_yapd_eliminates_single_way_delay_losses(self, pop):
        bd = pop.breakdown([YAPD()])
        assert bd.scheme_losses["YAPD"].get(LossReason.DELAY_1, 0) == 0

    def test_yapd_cannot_fix_multi_way_delay(self, pop):
        bd = pop.breakdown([YAPD()])
        for reason in (LossReason.DELAY_2, LossReason.DELAY_3, LossReason.DELAY_4):
            assert bd.scheme_losses["YAPD"].get(reason, 0) == bd.base_counts.get(
                reason, 0
            )

    def test_hybrid_dominates_both_parents(self, pop):
        bd = pop.breakdown([YAPD(), VACA(), Hybrid()])
        assert bd.scheme_total("Hybrid") <= bd.scheme_total("YAPD")
        assert bd.scheme_total("Hybrid") <= bd.scheme_total("VACA")

    def test_horizontal_breakdown(self, pop):
        bdh = pop.breakdown(
            [HYAPD(), VACA(), HybridHorizontal()], horizontal=True
        )
        assert bdh.base_total >= 0
        assert bdh.scheme_total("Hybrid-H") <= bdh.scheme_total("H-YAPD")


class TestCensus:
    def test_census_counts_saved_failures_only(self, pop):
        census = pop.configuration_census(Hybrid())
        saved_failures = sum(
            1
            for case in pop.cases
            if not case.passes and Hybrid().rescue(case).saved
        )
        assert sum(census.values()) == saved_failures

    def test_census_keys_are_config_strings(self, pop):
        for key in pop.configuration_census(Hybrid()):
            a, b, c = key.split("-")
            assert int(a) + int(b) + int(c) == 4


class TestReconstrained:
    def test_strict_has_more_losses(self, pop):
        strict = pop.reconstrained(STRICT_POLICY)
        relaxed = pop.reconstrained(RELAXED_POLICY)
        fail = lambda population: sum(
            1 for case in population.cases if not case.passes
        )
        assert fail(strict) > fail(pop) > fail(relaxed)

    def test_same_circuits(self, pop):
        strict = pop.reconstrained(STRICT_POLICY)
        assert strict.cases[0].circuit is pop.cases[0].circuit
