"""Tests for the whole-cache circuit model and its organisation."""

import pytest

from repro.circuit import (
    CacheCircuitModel,
    CacheOrganization,
    PAPER_ORGANIZATION,
    TECH45,
)
from repro.circuit.decoder import decoder_delay
from repro.circuit.paths import access_path_delay
from repro.circuit.sram import bitline_delay, cell_leakage, senseamp_delay
from repro.core import units
from repro.core.errors import ConfigurationError
from repro.variation.parameters import TABLE1
from repro.variation.sampling import CacheVariationSampler

NOMINAL = TABLE1.nominal()


class TestOrganization:
    """Pin the paper's Section 3 cache organisation."""

    def test_capacity_is_16KB(self):
        assert PAPER_ORGANIZATION.capacity_bytes == 16 * units.KB

    def test_paper_structure(self):
        org = PAPER_ORGANIZATION
        assert org.num_ways == 4
        assert org.banks_per_way == 4
        assert org.rows_per_bank == 64
        assert org.cols_per_bank == 128
        assert org.bitline_segments == 2
        assert org.block_bytes == 32

    def test_bitline_segment_rows(self):
        assert PAPER_ORGANIZATION.rows_per_segment == 32

    def test_bands_equal_banks(self):
        assert PAPER_ORGANIZATION.num_bands == 4

    def test_global_wire_length_grows_with_band(self):
        org = PAPER_ORGANIZATION
        lengths = [
            org.global_wire_length(b, TECH45.cell_height)
            for b in range(org.num_bands)
        ]
        assert lengths == sorted(lengths)
        assert lengths[3] > lengths[0]

    def test_global_wire_rejects_bad_band(self):
        with pytest.raises(ValueError):
            PAPER_ORGANIZATION.global_wire_length(4, TECH45.cell_height)

    def test_invalid_organisation(self):
        with pytest.raises(ConfigurationError):
            CacheOrganization(rows_per_bank=63)
        with pytest.raises(ConfigurationError):
            CacheOrganization(bitline_segments=3)


class TestStageModels:
    def test_decoder_delay_positive(self):
        assert decoder_delay(NOMINAL, TECH45) > 0

    def test_bitline_delay_positive(self):
        assert bitline_delay(NOMINAL, TECH45, PAPER_ORGANIZATION) > 0

    def test_senseamp_delay_positive(self):
        assert senseamp_delay(NOMINAL, TECH45) > 0

    def test_cell_leakage_magnitude(self):
        """A low-Vt 45 nm cell leaks tens of nA."""
        leak = cell_leakage(NOMINAL, TECH45)
        assert 1e-9 < leak < 1e-6


class TestNominalModel:
    def test_nominal_delay_plausible(self):
        model = CacheCircuitModel()
        delay = model.nominal().access_delay
        assert 200 * units.PS < delay < 2 * units.NS

    def test_nominal_symmetric_across_ways(self):
        nominal = CacheCircuitModel().nominal()
        delays = nominal.way_delays
        assert all(d == pytest.approx(delays[0]) for d in delays)

    def test_far_band_is_critical(self):
        """With uniform parameters the farthest bank's path is slowest."""
        way = CacheCircuitModel().nominal().ways[0]
        assert way.critical_band() == PAPER_ORGANIZATION.num_bands - 1
        assert list(way.band_delays) == sorted(way.band_delays)

    def test_nominal_leakage_plausible(self):
        """A 16 KB low-Vt L1 leaks milliwatts at 45 nm."""
        leak = CacheCircuitModel().nominal().total_leakage
        assert 1e-3 < leak < 1.0

    def test_peripheral_fraction_small(self):
        nominal = CacheCircuitModel().nominal()
        fraction = nominal.total_peripheral_leakage() / nominal.total_leakage
        assert 0.02 < fraction < 0.20

    def test_hyapd_overhead_exact(self):
        regular = CacheCircuitModel(hyapd=False).nominal().access_delay
        horizontal = CacheCircuitModel(hyapd=True).nominal().access_delay
        assert horizontal / regular == pytest.approx(
            1 + TECH45.hyapd_delay_overhead
        )

    def test_hyapd_leakage_unchanged(self):
        regular = CacheCircuitModel(hyapd=False).nominal().total_leakage
        horizontal = CacheCircuitModel(hyapd=True).nominal().total_leakage
        assert horizontal == pytest.approx(regular)


class TestEvaluatedChips:
    def test_evaluate_shape(self):
        sampler = CacheVariationSampler()
        model = CacheCircuitModel()
        result = model.evaluate(sampler.sample_chip(seed=1, chip_id=0))
        assert result.num_ways == 4
        assert result.num_bands == 4
        assert result.access_delay == max(result.way_delays)
        assert result.total_leakage == pytest.approx(sum(result.way_leakages))

    def test_evaluate_deterministic(self):
        sampler = CacheVariationSampler()
        model = CacheCircuitModel()
        cvmap = sampler.sample_chip(seed=1, chip_id=0)
        assert model.evaluate(cvmap) == model.evaluate(cvmap)

    def test_band_mismatch_rejected(self):
        sampler = CacheVariationSampler(num_bands=2)
        model = CacheCircuitModel()
        with pytest.raises(ConfigurationError):
            model.evaluate(sampler.sample_chip(seed=1, chip_id=0))

    def test_delay_without_band_reduces(self):
        sampler = CacheVariationSampler()
        result = CacheCircuitModel().evaluate(sampler.sample_chip(seed=2, chip_id=3))
        for way in result.ways:
            critical = way.critical_band()
            assert way.delay_without_band(critical) <= way.delay

    def test_band_array_leakage_sums(self):
        sampler = CacheVariationSampler()
        result = CacheCircuitModel().evaluate(sampler.sample_chip(seed=2, chip_id=3))
        total_bands = sum(
            result.band_array_leakage(b) for b in range(result.num_bands)
        )
        array_total = sum(way.array_leakage for way in result.ways)
        assert total_bands == pytest.approx(array_total)

    def test_residuals_scale_delay(self):
        sampler = CacheVariationSampler(
            path_residual_sigma=0.0, outlier_band_prob=0.0
        )
        cvmap = sampler.sample_chip(seed=3, chip_id=0)
        base = CacheCircuitModel().evaluate(cvmap)
        boosted = cvmap.ways[0]._replace(band_residuals=(2.0, 1.0, 1.0, 1.0))
        cvmap = cvmap._replace(ways=(boosted,) + cvmap.ways[1:])
        scaled = CacheCircuitModel().evaluate(cvmap)
        assert scaled.ways[0].band_delays[0] == pytest.approx(
            2 * base.ways[0].band_delays[0]
        )
        assert scaled.ways[0].band_delays[1] == pytest.approx(
            base.ways[0].band_delays[1]
        )


class TestVariationSensitivity:
    """The calibrated model reproduces the paper's cited magnitudes."""

    def test_access_delay_spread(self):
        """Paper Section 1 cites ~30% frequency variation; the calibrated
        model's access-delay spread is of that order (sigma/mean within
        10-60%, fat right tail)."""
        import numpy as np

        sampler = CacheVariationSampler()
        model = CacheCircuitModel()
        delays = [
            model.evaluate(sampler.sample_chip(seed=4, chip_id=i)).access_delay
            for i in range(300)
        ]
        ratio = float(np.std(delays) / np.mean(delays))
        assert 0.10 < ratio < 0.60

    def test_leakage_spread_is_wide(self):
        """Leakage spans multiples of its mean (paper Figures 1/8)."""
        import numpy as np

        sampler = CacheVariationSampler()
        model = CacheCircuitModel()
        leaks = [
            model.evaluate(sampler.sample_chip(seed=4, chip_id=i)).total_leakage
            for i in range(300)
        ]
        assert max(leaks) / float(np.mean(leaks)) > 3.0

    def test_leakage_delay_anticorrelation(self):
        import numpy as np

        sampler = CacheVariationSampler()
        model = CacheCircuitModel()
        delays, leaks = [], []
        for i in range(200):
            result = model.evaluate(sampler.sample_chip(seed=5, chip_id=i))
            delays.append(result.access_delay)
            leaks.append(result.total_leakage)
        corr = float(np.corrcoef(np.log(leaks), delays)[0, 1])
        assert corr < -0.5
