"""Tests for the functional set-associative cache and WayConfig."""

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.cache import (
    CacheGeometry,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    SetAssociativeCache,
    WayConfig,
)
from repro.core import units
from repro.core.errors import ConfigurationError

GEOM = CacheGeometry(16 * units.KB, 4, 32)


def addr(set_index: int, tag: int) -> int:
    """Build an address in a given set with a given tag."""
    return ((tag << 7) | set_index) << 5


class TestWayConfig:
    def test_uniform(self):
        config = WayConfig.uniform(4)
        assert config.latencies == (4, 4, 4, 4)
        assert config.num_ways == 4

    def test_rejects_all_disabled(self):
        with pytest.raises(ConfigurationError):
            WayConfig(latencies=(None, None, None, None))

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            WayConfig(latencies=(4, 4, 4, 0))

    def test_rejects_band_plus_way_disable(self):
        with pytest.raises(ConfigurationError):
            WayConfig(latencies=(4, 4, 4, None), disabled_band=1)

    def test_rejects_band_out_of_range(self):
        with pytest.raises(ConfigurationError):
            WayConfig(latencies=(4, 4, 4, 4), disabled_band=4)

    def test_from_cycles(self):
        config = WayConfig.from_cycles((4, 5, None, 4))
        assert config.latencies == (4, 5, None, 4)


class TestBasicBehaviour:
    def test_miss_then_fill_then_hit(self):
        cache = SetAssociativeCache(GEOM)
        a = addr(3, 7)
        assert not cache.access(a).hit
        cache.fill(a)
        result = cache.access(a)
        assert result.hit
        assert result.latency == 4

    def test_lookup_does_not_touch_state(self):
        cache = SetAssociativeCache(GEOM)
        a = addr(3, 7)
        cache.fill(a)
        before_hits = cache.hits
        assert cache.lookup(a).hit
        assert cache.hits == before_hits

    def test_eviction_after_assoc_exhausted(self):
        cache = SetAssociativeCache(GEOM)
        tags = list(range(5))
        for tag in tags:
            cache.fill(addr(0, tag))
        # tag 0 was LRU and must be gone
        assert not cache.lookup(addr(0, 0)).hit
        assert cache.lookup(addr(0, 4)).hit
        assert cache.evictions == 1

    def test_lru_respects_recency(self):
        cache = SetAssociativeCache(GEOM)
        for tag in range(4):
            cache.fill(addr(0, tag))
        cache.access(addr(0, 0))  # make tag 0 MRU
        cache.fill(addr(0, 9))  # evicts tag 1, not tag 0
        assert cache.lookup(addr(0, 0)).hit
        assert not cache.lookup(addr(0, 1)).hit

    def test_dirty_tracking(self):
        cache = SetAssociativeCache(GEOM)
        a = addr(0, 1)
        cache.fill(a)
        cache.access(a, write=True)
        for tag in range(2, 6):
            result = cache.fill(addr(0, tag))
            if result.evicted_block == GEOM.block_address(a):
                assert result.evicted_dirty
                break
        else:
            pytest.fail("dirty block never evicted")

    def test_duplicate_fill_is_idempotent(self):
        cache = SetAssociativeCache(GEOM)
        a = addr(0, 1)
        first = cache.fill(a)
        second = cache.fill(a)
        assert second.way == first.way
        assert cache.evictions == 0

    def test_statistics(self):
        cache = SetAssociativeCache(GEOM)
        a = addr(0, 1)
        cache.access(a)
        cache.fill(a)
        cache.access(a)
        assert cache.accesses == 2
        assert cache.miss_rate == pytest.approx(0.5)
        cache.reset_statistics()
        assert cache.accesses == 0
        assert cache.lookup(a).hit  # contents survive the reset


class TestWayDisable:
    def test_disabled_way_never_hits(self):
        config = WayConfig(latencies=(4, 4, 4, None))
        cache = SetAssociativeCache(GEOM, config)
        for tag in range(20):
            cache.fill(addr(0, tag))
            result = cache.lookup(addr(0, tag))
            assert result.way != 3

    def test_effective_associativity(self):
        config = WayConfig(latencies=(4, 4, None, None))
        cache = SetAssociativeCache(GEOM, config)
        assert cache.effective_associativity(0) == 2

    def test_three_way_capacity(self):
        """With one way off, 4 distinct tags cannot coexist in a set."""
        config = WayConfig(latencies=(4, 4, 4, None))
        cache = SetAssociativeCache(GEOM, config)
        for tag in range(4):
            cache.fill(addr(0, tag))
        hits = sum(cache.lookup(addr(0, tag)).hit for tag in range(4))
        assert hits == 3

    def test_per_way_latency_reported(self):
        config = WayConfig(latencies=(4, 4, 4, 5))
        cache = SetAssociativeCache(GEOM, config)
        seen = set()
        for tag in range(4):
            a = addr(0, tag)
            cache.fill(a)
            seen.add(cache.lookup(a).latency)
        assert seen == {4, 5}

    def test_config_way_count_must_match(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(GEOM, WayConfig(latencies=(4, 4)))


class TestReplacementPolicies:
    def test_fifo_ignores_recency(self):
        cache = SetAssociativeCache(GEOM, policy_factory=FIFOPolicy)
        for tag in range(4):
            cache.fill(addr(0, tag))
        cache.access(addr(0, 0))  # touch does not matter for FIFO
        cache.fill(addr(0, 9))
        assert not cache.lookup(addr(0, 0)).hit

    def test_random_policy_is_deterministic_per_seed(self):
        import numpy as np

        def factory():
            return RandomPolicy(np.random.default_rng(3))

        caches = []
        for _ in range(2):
            cache = SetAssociativeCache(GEOM, policy_factory=factory)
            for tag in range(8):
                cache.fill(addr(0, tag))
            caches.append(
                tuple(cache.lookup(addr(0, tag)).hit for tag in range(8))
            )
        assert caches[0] == caches[1]

    def test_victim_requires_candidates(self):
        policy = LRUPolicy()
        with pytest.raises(ConfigurationError):
            policy.victim([])


@hsettings(max_examples=30, deadline=None)
@given(
    tags=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=60)
)
def test_cache_never_exceeds_capacity(tags):
    """Property: a set holds at most `associativity` distinct blocks."""
    cache = SetAssociativeCache(GEOM)
    for tag in tags:
        if not cache.access(addr(5, tag)).hit:
            cache.fill(addr(5, tag))
    resident = sum(cache.lookup(addr(5, tag)).hit for tag in set(tags))
    assert resident <= GEOM.associativity
    recent = list(dict.fromkeys(reversed(tags)))[: GEOM.associativity]
    # the most recently used block is always resident
    assert cache.lookup(addr(5, recent[0])).hit
