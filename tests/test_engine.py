"""Tests for the parallel execution engine and persistent result store."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time

import pytest

from repro.engine import (
    EngineStats,
    ResultStore,
    ShardedExecutor,
    configure_engine,
    reset_engine,
)
from repro.engine.codec import encode_population
from repro.engine.store import SCHEMA_VERSION, canonical_json
from repro.experiments import ExperimentSettings, run_experiment
from repro.experiments.common import clear_caches, population, simulate_config

#: Small-but-nontrivial settings shared by the determinism tests.
SMALL = dict(seed=77, chips=48, trace_length=1500, warmup=500,
             benchmarks=("gzip", "mcf"))


@pytest.fixture(autouse=True)
def _fresh_engine():
    """Every test configures its own engine; always restore the default."""
    yield
    reset_engine()
    clear_caches()


def population_digest(pop) -> str:
    """Canonical digest of a population (architecture + constraints)."""
    body = canonical_json(encode_population(pop))
    return hashlib.sha256(body.encode()).hexdigest()


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for("simulation", {"a": 1})
        assert store.load("simulation", key) is None
        store.save("simulation", key, {"x": [1.5, None, "y"]})
        assert store.load("simulation", key) == {"x": [1.5, None, "y"]}

    def test_key_depends_on_identity_and_kind(self):
        a = ResultStore.key_for("population", {"seed": 1})
        b = ResultStore.key_for("population", {"seed": 2})
        c = ResultStore.key_for("simulation", {"seed": 1})
        assert len({a, b, c}) == 3
        # key order inside the identity must not matter
        assert ResultStore.key_for("population", {"a": 1, "b": 2}) == \
            ResultStore.key_for("population", {"b": 2, "a": 1})

    def test_corrupt_entry_is_discarded_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for("population", {"seed": 3})
        store.save("population", key, {"ok": True})
        path = store.path_for("population", key)
        path.write_text("{not json", encoding="utf-8")
        assert store.load("population", key) is None
        assert not path.exists()  # bad entry removed for recompute

    def test_wrong_version_is_discarded(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.key_for("population", {"seed": 4})
        path = store.path_for("population", key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"version": SCHEMA_VERSION + 1, "kind": "population",
                        "payload": {}}),
            encoding="utf-8",
        )
        assert store.load("population", key) is None

    def test_lru_cap_evicts_stalest(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=300)
        keys = []
        for i in range(6):
            key = store.key_for("simulation", {"i": i})
            keys.append(key)
            store.save("simulation", key, {"blob": "x" * 60})
            stamp = time.time() - (100 - i)  # older saves look staler
            os.utime(store.path_for("simulation", key), (stamp, stamp))
        store.save("simulation", store.key_for("simulation", {"i": 99}),
                   {"blob": "x" * 60})
        info = store.info()
        assert info["bytes"] <= 300
        # the newest entry survived, the oldest did not
        assert store.load("simulation", keys[0]) is None
        assert store.load("simulation",
                          store.key_for("simulation", {"i": 99})) is not None


# ----------------------------------------------------------------------
# sharded executor
# ----------------------------------------------------------------------
def _double(job):
    return job * 2


def _fail_in_worker(job):
    parent_pid, value = job
    if os.getpid() != parent_pid:
        raise RuntimeError("worker crash")
    return value * 10


def _hang_in_worker(job):
    parent_pid, value = job
    if os.getpid() != parent_pid:
        time.sleep(3.0)
    return value


class TestShardedExecutor:
    def test_serial_path(self):
        stats = EngineStats(workers=1)
        out = ShardedExecutor(workers=1).run(_double, [1, 2, 3], stats)
        assert out == [2, 4, 6]
        assert stats.jobs_run == 3
        assert stats.busy_seconds >= 0.0

    def test_pool_matches_serial_order(self):
        out = ShardedExecutor(workers=2).run(_double, list(range(7)))
        assert out == [i * 2 for i in range(7)]

    def test_crashed_worker_degrades_in_process(self):
        stats = EngineStats(workers=2)
        jobs = [(os.getpid(), 1), (os.getpid(), 2)]
        out = ShardedExecutor(workers=2).run(_fail_in_worker, jobs, stats)
        assert out == [10, 20]
        assert stats.jobs_retried == 2  # one retry each...
        assert stats.jobs_degraded == 2  # ...then in-process fallback

    def test_timeout_degrades_in_process(self):
        stats = EngineStats(workers=2)
        jobs = [(os.getpid(), 5), (os.getpid(), 6)]
        out = ShardedExecutor(workers=2, timeout=0.4).run(
            _hang_in_worker, jobs, stats
        )
        assert out == [5, 6]
        assert stats.jobs_degraded == 2


# ----------------------------------------------------------------------
# determinism across worker counts and processes
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_population_digest_identical_at_any_worker_count(self, tmp_path):
        digests = set()
        for workers in (1, 2, 4):
            configure_engine(
                workers=workers, cache_dir=tmp_path / f"w{workers}"
            )
            settings = ExperimentSettings(**SMALL)
            digests.add(population_digest(population(settings)))
        assert len(digests) == 1

    def test_store_roundtrip_is_bit_identical(self, tmp_path):
        settings = ExperimentSettings(**SMALL)
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        fresh = population_digest(engine.population(settings))
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        loaded = engine.population(settings)
        assert engine.stats.jobs_cached_disk == 1
        assert population_digest(loaded) == fresh

    def test_cache_hit_across_fresh_processes(self, tmp_path):
        script = (
            "from repro.engine import get_engine\n"
            "from repro.experiments import ExperimentSettings\n"
            f"s = ExperimentSettings(seed={SMALL['seed']}, chips=32,"
            " trace_length=1000, warmup=100, benchmarks=('gzip',))\n"
            "e = get_engine()\n"
            "e.population(s)\n"
            "print('RUN', e.stats.jobs_run, 'DISK', e.stats.jobs_cached_disk)\n"
        )
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path))
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        assert outputs[0] == "RUN 1 DISK 0"  # cold: computed
        assert outputs[1] == "RUN 0 DISK 1"  # fresh process: pure disk hit

    def test_experiments_byte_identical_serial_vs_parallel(self, tmp_path):
        texts = {}
        for workers in (1, 4):
            configure_engine(workers=workers, persistent=False)
            clear_caches()
            settings = ExperimentSettings(**SMALL)
            for name in ("fig8", "table2", "fig9"):
                texts.setdefault(name, set()).add(
                    run_experiment(name, settings).text
                )
        for name, variants in texts.items():
            assert len(variants) == 1, f"{name} differs across worker counts"


# ----------------------------------------------------------------------
# warm cache behaviour
# ----------------------------------------------------------------------
class TestWarmCache:
    def test_warm_store_skips_all_jobs(self, tmp_path):
        settings = ExperimentSettings(**SMALL)
        configure_engine(workers=1, cache_dir=tmp_path)
        run_experiment("fig8", settings)
        run_experiment("fig9", settings)

        # Fresh engine (fresh process semantics: empty memo, same store).
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        run_experiment("fig8", settings)
        run_experiment("fig9", settings)
        assert engine.stats.jobs_run == 0
        assert engine.stats.jobs_cached_disk >= 1 + 6  # population + sims

    def test_clear_caches_keeps_persistent_store(self, tmp_path):
        settings = ExperimentSettings(**SMALL)
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        population(settings)
        clear_caches()
        engine.stats.reset()
        population(settings)
        assert engine.stats.jobs_run == 0
        assert engine.stats.jobs_cached_disk == 1

    def test_memo_returns_identical_object(self, tmp_path):
        settings = ExperimentSettings(**SMALL)
        configure_engine(workers=1, cache_dir=tmp_path)
        assert population(settings) is population(settings)
        a = simulate_config(settings, "gzip")
        assert a is simulate_config(settings, "gzip")

    def test_simulate_many_handles_duplicates_and_order(self, tmp_path):
        settings = ExperimentSettings(**SMALL)
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        specs = [
            ("gzip", None, None),
            ("mcf", None, None),
            ("gzip", None, None),  # duplicate of the first
            ("gzip", (4, 4, 4, None), None),
        ]
        results = engine.simulate_many(settings, specs)
        assert results[0] is results[2]
        assert results[1].instructions > 0
        # distinct configuration => distinct cache entry
        assert results[3] is not results[0]
        assert results[3].hierarchy_stats != results[0].hierarchy_stats


class TestEngineConfigFromEnv:
    def test_rejects_non_positive_workers(self, monkeypatch):
        from repro.core.errors import ConfigurationError
        from repro.engine.core import EngineConfig

        for bad in ("0", "-3"):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
                EngineConfig.from_env()

    def test_rejects_non_positive_job_timeout(self, monkeypatch):
        from repro.core.errors import ConfigurationError
        from repro.engine.core import EngineConfig

        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "0")
        with pytest.raises(ConfigurationError, match="REPRO_JOB_TIMEOUT"):
            EngineConfig.from_env()

    def test_accepts_positive_values(self, monkeypatch):
        from repro.engine.core import EngineConfig

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert EngineConfig.from_env().workers == 3


class TestInflightDedup:
    def test_concurrent_submissions_share_one_computation(self, tmp_path):
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        settings = ExperimentSettings(seed=123, chips=400)
        futures = [engine.submit_population(settings) for _ in range(4)]
        results = [f.result(timeout=60) for f in futures]
        assert all(r is results[0] for r in results)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.inflight.leader.population"] == 1
        assert counters["engine.inflight.joined.population"] == 3
        stage = engine.metrics.snapshot()["histograms"]["stage.population"]
        assert stage["count"] == 1

    def test_cached_submission_resolves_immediately(self, tmp_path):
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        settings = ExperimentSettings(seed=124, chips=30)
        engine.submit_population(settings).result(timeout=60)
        future = engine.submit_population(settings)
        assert future.done()
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.inflight.cached.population"] == 1

    def test_submit_simulations_single_dispatch(self, tmp_path):
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        settings = ExperimentSettings(**SMALL)
        specs = [("gzip", None, None), ("mcf", None, None)]
        futures = engine.submit_simulations(settings, specs)
        results = [f.result(timeout=60) for f in futures]
        assert results[0].instructions > 0
        assert engine.inflight_count() == 0

    def test_progress_callback_reports_completion(self, tmp_path):
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        settings = ExperimentSettings(seed=125, chips=40)
        seen = []
        engine.population(settings, progress=lambda d, t: seen.append((d, t)))
        assert seen and seen[-1][0] == seen[-1][1]
