"""Tests for the grid-based (Friedberg-style) correlation sampler."""

import numpy as np
import pytest

from repro.circuit import CacheCircuitModel
from repro.core.errors import ConfigurationError
from repro.variation.gridmodel import GridCorrelationModel, GridVariationSampler
from repro.variation.parameters import TABLE1


class TestGridCorrelationModel:
    def test_covariance_is_unit_diagonal(self):
        cov = GridCorrelationModel(rows=4, cols=4).covariance()
        assert np.allclose(np.diag(cov), 1.0)

    def test_covariance_decays_with_distance(self):
        model = GridCorrelationModel(rows=1, cols=8, correlation_length=2.0)
        cov = model.covariance()
        assert cov[0, 1] > cov[0, 4] > cov[0, 7]

    def test_longer_correlation_length_is_smoother(self):
        short = GridCorrelationModel(correlation_length=1.0).covariance()
        long_ = GridCorrelationModel(correlation_length=6.0).covariance()
        assert long_[0, 10] > short[0, 10]

    def test_cholesky_reconstructs(self):
        model = GridCorrelationModel(rows=4, cols=4)
        chol = model.cholesky()
        assert np.allclose(chol @ chol.T, model.covariance(), atol=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GridCorrelationModel(rows=0)
        with pytest.raises(ConfigurationError):
            GridCorrelationModel(intra_fraction=1.5)

    def test_cholesky_cached_per_instance(self):
        """The O(cells^3) factorisation runs once per model geometry."""
        model = GridCorrelationModel(rows=6, cols=6)
        assert model.cholesky() is model.cholesky()

    def test_cholesky_factorises_once_across_samplers(self, monkeypatch):
        calls = []
        real = np.linalg.cholesky

        def counting(matrix):
            calls.append(matrix.shape)
            return real(matrix)

        monkeypatch.setattr(np.linalg, "cholesky", counting)
        model = GridCorrelationModel(rows=4, cols=4)
        GridVariationSampler(model=model)
        GridVariationSampler(model=model)
        assert len(calls) == 1

    def test_cached_factor_still_correct(self):
        model = GridCorrelationModel(rows=4, cols=4)
        model.cholesky()  # prime the cache
        chol = model.cholesky()
        assert np.allclose(chol @ chol.T, model.covariance(), atol=1e-6)


class TestGridVariationSampler:
    def test_map_shape_matches_hierarchical(self):
        cvmap = GridVariationSampler().sample_chip(seed=1, chip_id=0)
        assert cvmap.num_ways == 4
        assert cvmap.num_bands == 4
        assert len(cvmap.ways[0].band_residuals) == 4

    def test_deterministic(self):
        sampler = GridVariationSampler()
        assert sampler.sample_chip(3, 5) == sampler.sample_chip(3, 5)

    def test_feeds_circuit_model(self):
        cvmap = GridVariationSampler().sample_chip(seed=2, chip_id=1)
        result = CacheCircuitModel().evaluate(cvmap)
        assert result.access_delay > 0
        assert result.total_leakage > 0

    def test_adjacent_bands_more_correlated_than_distant(self):
        """The field is smooth: neighbouring bands track each other more
        tightly than bands at opposite ends of a way."""
        sampler = GridVariationSampler(
            path_residual_sigma=0.0, outlier_band_prob=0.0
        )
        near, far = [], []
        for i in range(300):
            cvmap = sampler.sample_chip(seed=11, chip_id=i)
            bands = cvmap.ways[0].bands
            near.append(bands[0].vt - bands[1].vt)
            far.append(bands[0].vt - bands[3].vt)
        assert np.std(far) > np.std(near)

    def test_same_band_correlated_across_adjacent_ways(self):
        """Way 0 and way 1 share the mesh row: their band-0 cells are
        physically close, so their intra-die components correlate."""
        sampler = GridVariationSampler(
            path_residual_sigma=0.0, outlier_band_prob=0.0
        )
        a, b = [], []
        for i in range(300):
            cvmap = sampler.sample_chip(seed=13, chip_id=i)
            mean = np.mean(
                [w.bands[0].vt for w in cvmap.ways]
            )
            a.append(cvmap.ways[0].bands[0].vt - mean)
            b.append(cvmap.ways[1].bands[0].vt - mean)
        corr = float(np.corrcoef(a, b)[0, 1])
        assert corr > -0.5  # not anti-correlated; smooth fields overlap

    def test_mean_tracks_nominal(self):
        sampler = GridVariationSampler()
        vts = [
            sampler.sample_chip(seed=17, chip_id=i).die.vt for i in range(300)
        ]
        assert float(np.mean(vts)) == pytest.approx(
            TABLE1.nominal().vt, rel=0.03
        )

    def test_rejects_non_mesh_way_count(self):
        with pytest.raises(ConfigurationError):
            GridVariationSampler(num_ways=2)

    def test_yield_pipeline_compatible(self):
        """The full yield study runs with the grid sampler plugged in."""
        from repro.schemes import Hybrid, YAPD
        from repro.yieldmodel import YieldStudy

        pop = YieldStudy(
            seed=2006, count=200, sampler=GridVariationSampler()
        ).run()
        bd = pop.breakdown([YAPD(), Hybrid()])
        if bd.base_total:
            assert bd.scheme_total("Hybrid") <= bd.scheme_total("YAPD")
