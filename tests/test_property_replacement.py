"""Property tests: replacement-policy invariants under random workloads.

The LRU invariants the cache model relies on, checked against a
straightforward reference model over seeded random access sequences:

* the victim is always one of the eligible candidates;
* never-touched candidates are evicted before any touched one;
* among touched candidates, the least recently touched loses;
* a touch moves a way to most-recently-used (it cannot be the next
  victim while another touched candidate exists);
* victim selection is a pure query — it never mutates policy state.

FIFO and random get the basic safety properties too, since experiments
may swap them in via ``policy_factory``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.replacement import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.core.errors import ConfigurationError

NUM_SEQUENCES = 30


def _random_workload(seed: int):
    """(ways, candidate set, interleaved touch/victim script)."""
    rng = random.Random(seed)
    ways = rng.choice((2, 4, 8))
    candidates = sorted(
        rng.sample(range(ways), k=rng.randint(1, ways))
    )
    script = []
    for _ in range(rng.randint(30, 120)):
        if rng.random() < 0.7:
            script.append(("touch", rng.randrange(ways)))
        else:
            script.append(("victim", None))
    return ways, candidates, script


class _ReferenceLRU:
    """Trivially-correct LRU: a recency list, most recent last."""

    def __init__(self):
        self.recency = []

    def touch(self, way):
        if way in self.recency:
            self.recency.remove(way)
        self.recency.append(way)

    def victim(self, candidates):
        untouched = [w for w in candidates if w not in self.recency]
        if untouched:
            return untouched[0]
        return next(w for w in self.recency if w in candidates)


@pytest.mark.parametrize("seed", range(NUM_SEQUENCES))
def test_lru_matches_reference_model(seed):
    _, candidates, script = _random_workload(seed)
    policy, reference = LRUPolicy(), _ReferenceLRU()
    for op, way in script:
        if op == "touch":
            policy.touch(way)
            reference.touch(way)
        else:
            assert policy.victim(candidates) == reference.victim(candidates)


@pytest.mark.parametrize("seed", range(NUM_SEQUENCES))
def test_lru_victim_is_least_recent_candidate(seed):
    _, candidates, script = _random_workload(seed)
    policy = LRUPolicy()
    touched = []  # recency order, most recent last
    for op, way in script:
        if op == "touch":
            policy.touch(way)
            if way in touched:
                touched.remove(way)
            touched.append(way)
            continue
        victim = policy.victim(candidates)
        assert victim in candidates
        untouched = [w for w in candidates if w not in touched]
        if untouched:
            assert victim not in touched
        else:
            # No touched candidate may be older than the victim.
            assert touched.index(victim) == min(
                touched.index(w) for w in candidates
            )
            # The most recently touched candidate survives (unless it is
            # the only one).
            mru = max(candidates, key=touched.index)
            if len(candidates) > 1:
                assert victim != mru
        # victim() is a query: asking again changes nothing.
        assert policy.victim(candidates) == victim
        # Touching the victim immediately protects it.
        if len([w for w in candidates if w != victim]) >= 1 and not untouched:
            policy.touch(victim)
            touched.remove(victim)
            touched.append(victim)
            assert policy.victim(candidates) != victim


@pytest.mark.parametrize("policy_cls", [LRUPolicy, FIFOPolicy])
def test_empty_candidates_raise(policy_cls):
    # Zero-way sets (H-YAPD masking every way of a group) are a
    # configuration problem, not a simulator invariant violation.
    with pytest.raises(ConfigurationError):
        policy_cls().victim([])
    with pytest.raises(ConfigurationError):
        RandomPolicy().victim([])


@pytest.mark.parametrize("seed", range(10))
def test_fifo_evicts_in_fill_order(seed):
    rng = random.Random(seed)
    ways = 4
    policy = FIFOPolicy()
    fills = list(range(ways))
    rng.shuffle(fills)
    for way in fills:
        policy.touch(way)
    # Hits must not reorder FIFO.
    for _ in range(10):
        policy.touch(rng.choice(fills))
    candidates = list(range(ways))
    evicted = []
    for _ in range(ways):
        victim = policy.victim(candidates)
        evicted.append(victim)
        policy.touch(victim)  # re-fill, goes to the back of the queue
    assert evicted == fills


def test_random_policy_is_deterministic_per_seed_and_in_range():
    candidates = [1, 3, 5, 7]
    a = RandomPolicy(np.random.default_rng(42))
    b = RandomPolicy(np.random.default_rng(42))
    picks = [a.victim(candidates) for _ in range(50)]
    assert picks == [b.victim(candidates) for _ in range(50)]
    assert set(picks) <= set(candidates)
    assert len(set(picks)) > 1  # actually random, not constant
