"""Benchmark: ablation — spatial correlation vs power-down granularity."""


def test_bench_ablation_corr(run_paper_experiment):
    result = run_paper_experiment("ablation_corr")
    sweep = {(ws, band): (yapd, hyapd) for ws, band, yapd, hyapd in result.data["sweep"]}
    # with the band component on, H-YAPD's leakage/delay recovery relies
    # on it: removing the component should not *improve* H-YAPD
    for ws in (0.5, 1.0, 2.0):
        with_band = sweep[(ws, 1.3)][1]
        without = sweep[(ws, 0.0)][1]
        assert with_band >= without - 0.05
