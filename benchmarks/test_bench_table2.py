"""Benchmark: Table 2 — sources of yield loss, regular power-down."""


def test_bench_table2(run_paper_experiment):
    result = run_paper_experiment("table2")
    breakdown = result.data["breakdown"]
    # paper shape: Hybrid best, then YAPD, then VACA, all above base
    assert (
        breakdown.yield_with("Hybrid")
        > breakdown.yield_with("YAPD")
        > breakdown.yield_with("VACA")
        > breakdown.yield_with()
    )
