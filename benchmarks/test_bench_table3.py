"""Benchmark: Table 3 — sources of yield loss, horizontal power-down."""


def test_bench_table3(run_paper_experiment):
    result = run_paper_experiment("table3")
    breakdown = result.data["breakdown"]
    assert breakdown.scheme_total("Hybrid-H") <= breakdown.scheme_total("H-YAPD")
