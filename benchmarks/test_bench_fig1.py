"""Benchmark: Figure 1 — yield factors per technology node."""


def test_bench_fig1(run_paper_experiment):
    result = run_paper_experiment("fig1")
    factors = result.data["factors"]
    # parametric loss grows monotonically as features shrink
    parametric = [factors[node][2] for node in ("0.35", "0.25", "0.18", "0.13", "0.09")]
    assert parametric == sorted(parametric)
