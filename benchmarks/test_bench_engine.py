"""Benchmark: engine scaling — serial vs parallel population, cache hits.

Records three numbers into the bench JSON trajectory (``extra_info``):

* ``serial_s`` — cold 1-worker wall time for one Monte Carlo population,
* ``parallel_s`` / ``parallel_speedup`` — the same population cold at
  ``REPRO_WORKERS`` (or 2) workers,
* ``cache_hit_s`` / ``cache_hit_speedup`` — a fresh engine re-loading the
  population from the persistent store (the timed region).

The population size is deliberately smaller than the paper's 2000 chips
(``REPRO_BENCH_ENGINE_CHIPS`` overrides) so the benchmark tracks engine
overheads rather than raw circuit-model throughput.
"""

from __future__ import annotations

import time

from repro.core.validation import env_int
from repro.engine import configure_engine, reset_engine
from repro.experiments import ExperimentSettings


def test_bench_engine_population(benchmark, tmp_path, request):
    request.addfinalizer(reset_engine)  # leave the session engine untouched
    chips = env_int("REPRO_BENCH_ENGINE_CHIPS", 600)
    workers = max(2, env_int("REPRO_WORKERS", 2))
    settings = ExperimentSettings(
        seed=2006, chips=chips, trace_length=1000, warmup=100,
        benchmarks=("gzip",),
    )

    engine = configure_engine(workers=1, cache_dir=tmp_path / "serial")
    start = time.perf_counter()
    serial_pop = engine.population(settings)
    serial_s = time.perf_counter() - start

    engine = configure_engine(workers=workers, cache_dir=tmp_path / "pool")
    start = time.perf_counter()
    parallel_pop = engine.population(settings)
    parallel_s = time.perf_counter() - start
    assert len(parallel_pop.cases) == len(serial_pop.cases) == chips

    # Warm-store load in a fresh engine (fresh-process semantics).
    engine = configure_engine(workers=1, cache_dir=tmp_path / "pool")
    warm_pop = benchmark.pedantic(
        engine.population, args=(settings,), rounds=1, iterations=1
    )
    assert engine.stats.jobs_run == 0
    assert engine.stats.jobs_cached_disk == 1
    assert len(warm_pop.cases) == chips

    cache_hit_s = max(benchmark.stats.stats.mean, 1e-9)
    benchmark.extra_info["chips"] = chips
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["serial_s"] = round(serial_s, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 4)
    benchmark.extra_info["parallel_speedup"] = round(serial_s / parallel_s, 3)
    benchmark.extra_info["cache_hit_s"] = round(cache_hit_s, 4)
    benchmark.extra_info["cache_hit_speedup"] = round(serial_s / cache_hit_s, 3)
