"""Benchmark: Table 6 — per-configuration performance degradation.

This is the heaviest artefact: it sweeps every saved cache configuration
over the SPEC2000-like suite on the pipeline simulator. Scale with
REPRO_TRACE / REPRO_BENCHMARKS.
"""


def test_bench_table6(run_paper_experiment):
    result = run_paper_experiment("table6")
    degs = result.data["degradations"]
    weighted = result.data["weighted"]
    # paper shapes: VACA cost grows with the number of slow ways,
    # Hybrid's 3-1-0 equals VACA's, and YAPD is a single number.
    assert degs["3-1-0"]["VACA"] <= degs["2-2-0"]["VACA"] <= degs["0-4-0"]["VACA"]
    assert degs["3-1-0"]["Hybrid"] == degs["3-1-0"]["VACA"]
    assert degs["3-1-0"]["YAPD"] == degs["4-0-0"]["YAPD"]
    # weighted sums: Hybrid sits between YAPD and VACA (paper: 1.08/1.83/2.20)
    assert weighted["YAPD"] <= weighted["Hybrid"] * 1.5
    assert weighted["Hybrid"] <= weighted["VACA"] * 1.2
