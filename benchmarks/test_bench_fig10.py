"""Benchmark: Figure 10 — per-benchmark CPI increase for 2-2-0 (VACA)."""


def test_bench_fig10(run_paper_experiment):
    result = run_paper_experiment("fig10")
    series = result.data["series"]["VACA"]
    assert len(series) >= 1
    assert all(value < 0.15 for value in series.values())
