"""Benchmark: Section 4.2 — H-YAPD access-latency overhead."""

import pytest


def test_bench_sec42(run_paper_experiment):
    result = run_paper_experiment("sec42")
    assert result.data["nominal_overhead"] == pytest.approx(0.025)
    assert result.data["h_losses"] >= result.data["base_losses"]
