"""Benchmark: Table 5 — relaxed/strict constraint totals (horizontal)."""


def test_bench_table5(run_paper_experiment):
    result = run_paper_experiment("table5")
    breakdowns = result.data["breakdowns"]
    for name in ("relaxed", "strict"):
        bd = breakdowns[name]
        hybrid = bd.scheme_total("Hybrid-H")
        assert hybrid <= bd.scheme_total("H-YAPD")
        assert hybrid <= bd.scheme_total("VACA")
