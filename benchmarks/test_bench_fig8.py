"""Benchmark: Figure 8 — normalized leakage vs latency scatter."""


def test_bench_fig8(run_paper_experiment, settings):
    result = run_paper_experiment("fig8")
    assert len(result.data["normalized_leakage"]) == settings.chips
    # the paper's inverse leakage/latency relation
    assert result.data["correlation"] < -0.3
