"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure through the experiment
registry and prints the rendered artefact. Scaling knobs:

* ``REPRO_CHIPS`` — Monte Carlo population (default here: the paper's
  2000 chips; the yield pipeline takes a few seconds).
* ``REPRO_TRACE`` / ``REPRO_WARMUP`` — pipeline-simulation window per
  benchmark run (defaults here are reduced so the full Table 6 sweep
  stays in benchmark-friendly territory; raise them to tighten CPI
  estimates).
* ``REPRO_BENCHMARKS`` — subset of SPEC2000-like workloads.

Each benchmark runs exactly one round (the experiments are deterministic
and internally memoised, so repeated rounds would only measure the cache).
"""

from __future__ import annotations

import os

import pytest

from repro.core.validation import env_int as _env_int
from repro.engine import get_engine, reset_engine
from repro.experiments import ExperimentSettings, run_experiment


@pytest.fixture(scope="session", autouse=True)
def _isolated_engine(tmp_path_factory):
    """Point the engine's persistent store at a per-session directory.

    Benchmarks measure compute, so a warm ``.repro_cache/`` left over
    from a previous run would silently turn them into disk-read timings.
    ``REPRO_WORKERS`` still applies, so the suite can be benchmarked at
    any worker count.
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    reset_engine()
    yield
    reset_engine()


@pytest.fixture
def engine_stats():
    """The live engine's statistics (zeroed before the benchmark)."""
    stats = get_engine().stats
    stats.reset()
    return stats


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        seed=_env_int("REPRO_SEED", 2006),
        chips=_env_int("REPRO_CHIPS", 2000),
        trace_length=_env_int("REPRO_TRACE", 10_000),
        warmup=_env_int("REPRO_WARMUP", 8_000),
        benchmarks=(
            tuple(os.environ["REPRO_BENCHMARKS"].split(","))
            if os.environ.get("REPRO_BENCHMARKS")
            else None
        ),
    )


@pytest.fixture
def run_paper_experiment(settings, benchmark):
    """Run one experiment under the benchmark timer and print its table."""

    def runner(name: str):
        result = benchmark.pedantic(
            run_experiment, args=(name, settings), rounds=1, iterations=1
        )
        print()
        print(result.text)
        return result

    return runner
