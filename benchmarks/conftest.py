"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure through the experiment
registry and prints the rendered artefact. Scaling knobs:

* ``REPRO_CHIPS`` — Monte Carlo population (default here: the paper's
  2000 chips; the yield pipeline takes a few seconds).
* ``REPRO_TRACE`` / ``REPRO_WARMUP`` — pipeline-simulation window per
  benchmark run (defaults here are reduced so the full Table 6 sweep
  stays in benchmark-friendly territory; raise them to tighten CPI
  estimates).
* ``REPRO_BENCHMARKS`` — subset of SPEC2000-like workloads.

Each benchmark runs exactly one round (the experiments are deterministic
and internally memoised, so repeated rounds would only measure the cache).

Set ``REPRO_BENCH_RECORD`` to a path (e.g. ``BENCH_history.json``) to
route every pytest benchmark through the same provenance-stamped trend
store that ``repro bench run`` writes — one record per experiment, suite
name ``pytest`` — so ``repro bench compare`` and ``repro bench report``
see the pytest timings next to the CLI suites'.
"""

from __future__ import annotations

import os

import pytest

from repro.core.validation import env_int as _env_int
from repro.engine import get_engine, reset_engine
from repro.experiments import ExperimentSettings, run_experiment


@pytest.fixture(scope="session", autouse=True)
def _isolated_engine(tmp_path_factory):
    """Point the engine's persistent store at a per-session directory.

    Benchmarks measure compute, so a warm ``.repro_cache/`` left over
    from a previous run would silently turn them into disk-read timings.
    ``REPRO_WORKERS`` still applies, so the suite can be benchmarked at
    any worker count.
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    reset_engine()
    yield
    reset_engine()


@pytest.fixture
def engine_stats():
    """The live engine's statistics (zeroed before the benchmark)."""
    stats = get_engine().stats
    stats.reset()
    return stats


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        seed=_env_int("REPRO_SEED", 2006),
        chips=_env_int("REPRO_CHIPS", 2000),
        trace_length=_env_int("REPRO_TRACE", 10_000),
        warmup=_env_int("REPRO_WARMUP", 8_000),
        benchmarks=(
            tuple(os.environ["REPRO_BENCHMARKS"].split(","))
            if os.environ.get("REPRO_BENCHMARKS")
            else None
        ),
    )


#: Shared per-session timestamp so every recorded pytest benchmark of
#: one run lands under one run_id in the trend store.
_RECORD_SESSION = {"created": None}


def _record_bench(name: str, samples) -> None:
    """Append one pytest-benchmark timing to the shared trend store."""
    history = os.environ.get("REPRO_BENCH_RECORD")
    if not history or not samples:
        return
    import time

    from repro.obs.bench import (
        BenchResult,
        append_history,
        make_record,
        new_run_id,
    )
    from repro.obs.provenance import provenance_stamp

    if _RECORD_SESSION["created"] is None:
        _RECORD_SESSION["created"] = time.time()
    created = _RECORD_SESSION["created"]
    result = BenchResult(
        suite="pytest", bench=f"pytest.{name}",
        samples=[float(s) for s in samples], warmup=0,
    )
    provenance = provenance_stamp(
        workers=get_engine().config.workers,
        config={"suite": "pytest"},
    )
    append_history(
        history,
        [make_record(result, new_run_id("pytest", created, provenance),
                     created, provenance)],
    )


@pytest.fixture
def run_paper_experiment(settings, benchmark):
    """Run one experiment under the benchmark timer and print its table.

    With ``REPRO_BENCH_RECORD=<history.json>`` the measured rounds are
    also appended to the perf trend store (see module docstring).
    """

    def runner(name: str):
        result = benchmark.pedantic(
            run_experiment, args=(name, settings), rounds=1, iterations=1
        )
        try:
            samples = list(benchmark.stats.stats.data)
        except AttributeError:  # disabled benchmarks / plugin internals
            samples = []
        _record_bench(name, samples)
        print()
        print(result.text)
        return result

    return runner
