"""Benchmark: Section 4.5 — naive binning at 5 and 6 cycles."""


def test_bench_sec45(run_paper_experiment):
    result = run_paper_experiment("sec45")
    series = result.data["series"]
    bench_names = list(series["binning@5"])
    avg5 = sum(series["binning@5"].values()) / len(bench_names)
    avg6 = sum(series["binning@6"].values()) / len(bench_names)
    # the paper's 6.42% -> 12.62% doubling shape
    assert 1.5 * avg5 < avg6 < 3.0 * avg5
