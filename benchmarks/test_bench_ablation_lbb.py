"""Benchmark: ablation — load-bypass buffer depth."""


def test_bench_ablation_lbb(run_paper_experiment):
    result = run_paper_experiment("ablation_lbb")
    data = result.data
    assert data[0]["reduction"] <= data[1]["reduction"] <= data[2]["reduction"]
    assert data[0]["cost"] <= data[1]["cost"] <= data[2]["cost"]
