"""Benchmark: Figure 9 — per-benchmark CPI increase for 3-1-0."""


def test_bench_fig9(run_paper_experiment):
    result = run_paper_experiment("fig9")
    series = result.data["series"]
    # every benchmark pays something under VACA; averages are small (<10%)
    vaca = list(series["VACA"].values())
    assert sum(vaca) / len(vaca) < 0.10
