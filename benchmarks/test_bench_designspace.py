"""Benchmarks: the design-space ablations (associativity, temperature,
sensors) beyond the paper's fixed setup."""


def test_bench_ablation_assoc(run_paper_experiment):
    result = run_paper_experiment("ablation_assoc")
    data = result.data
    # one power-down removes a bigger leakage share at low associativity
    assert data[2]["yapd"] >= data[8]["yapd"]


def test_bench_ablation_temperature(run_paper_experiment):
    result = run_paper_experiment("ablation_temperature")
    data = result.data
    # cold binning shifts the loss mix toward leakage
    assert data[300.0]["leakage"] >= data[400.0]["leakage"]


def test_bench_ablation_sensor(run_paper_experiment):
    result = run_paper_experiment("ablation_sensor")
    perfect = result.data[(0.0, 0)]
    worst = result.data[(0.25, 8)]
    assert worst["actual"] <= perfect["actual"]
    assert perfect["false_saves"] == 0
