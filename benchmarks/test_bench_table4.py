"""Benchmark: Table 4 — relaxed/strict constraint totals (regular)."""


def test_bench_table4(run_paper_experiment):
    result = run_paper_experiment("table4")
    breakdowns = result.data["breakdowns"]
    assert breakdowns["strict"].base_total > breakdowns["relaxed"].base_total
